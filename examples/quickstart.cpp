// Quickstart: the complete FVN loop on the paper's running example (§2.2 +
// §3.1) in ~60 lines of user code.
//
//   1. Specify the path-vector protocol in NDlog.
//   2. Translate it to a logical theory (arc 4) and print the PVS-style spec.
//   3. Prove route optimality (bestPathStrong) — the paper's 7-step proof.
//   4. Execute the same program distributed over a simulated network (arc 7).
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/fvn.hpp"
#include "core/protocols.hpp"

int main() {
  using namespace fvn;
  using logic::Formula;
  using logic::LTerm;
  using logic::Sort;
  using logic::TypedVar;

  // 1. Specification: NDlog straight from the paper.
  std::cout << "=== NDlog specification (paper section 2.2) ===\n"
            << core::path_vector_source() << "\n";
  core::Fvn fvn = core::Fvn::from_ndlog(core::path_vector_program());

  // 2. Arc 4: the generated logical theory.
  std::cout << "=== Generated logical specification (arc 4) ===\n"
            << fvn.theory().to_string() << "\n";

  // 3. Arc 5: prove route optimality.
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto C = LTerm::var("C");
  auto P = LTerm::var("P");
  auto C2 = LTerm::var("C2");
  auto P2 = LTerm::var("P2");
  fvn.add_property(logic::Theorem{
      "bestPathStrong",
      Formula::forall(
          {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node},
           TypedVar{"C", Sort::Metric}, TypedVar{"P", Sort::Path}},
          Formula::implies(
              Formula::pred("bestPath", {S, D, P, C}),
              Formula::negate(Formula::exists(
                  {TypedVar{"C2", Sort::Metric}, TypedVar{"P2", Sort::Path}},
                  Formula::conj({Formula::pred("path", {S, D, P2, C2}),
                                 Formula::cmp(ndlog::CmpOp::Lt, C2, C)})))))});
  for (const auto& outcome : fvn.verify_statically()) {
    std::cout << "=== Verification (arc 5) ===\n"
              << outcome.property << " [" << outcome.backend << "] "
              << (outcome.verified ? "PROVED" : "FAILED") << " — " << outcome.detail
              << "\n\n";
  }

  // 4. Arc 7: distributed execution on a 5-node random topology.
  auto links = core::link_facts(core::random_topology(5, 3, /*seed=*/7));
  ndlog::Database merged;
  auto stats = fvn.execute(links, {}, {}, &merged);
  std::cout << "=== Distributed execution (arc 7) ===\n"
            << "events=" << stats.events_processed << " messages=" << stats.messages_sent
            << " converged_at=" << stats.last_change_time << "s\n"
            << "best paths computed:\n";
  for (const auto& row : ndlog::sorted_strings(merged.relation("bestPath"))) {
    std::cout << "  " << row << "\n";
  }
  return 0;
}
