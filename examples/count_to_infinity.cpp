// Count-to-infinity (paper §3.1, after reference [22]): the distance-vector
// anomaly exposed by three different FVN verification mechanisms.
//
//   1. Static shape: centralized evaluation of the DV NDlog program diverges
//      on a cyclic topology (the evaluator's iteration guard fires).
//   2. Model checking: after a link failure, the checker finds the trace in
//      which route costs climb past any bound — and shows split horizon
//      eliminates the two-node loop.
//   3. The contrast: the path-vector program (with its f_inPath cycle check)
//      terminates and its optimality theorem is provable.
//
// Build & run:  ./build/examples/count_to_infinity
#include <iostream>

#include "core/protocols.hpp"
#include "mc/dv_model.hpp"
#include "ndlog/eval.hpp"

int main() {
  using namespace fvn;

  std::cout << "=== 1. Centralized evaluation of distance-vector (no loop check) ===\n";
  ndlog::Evaluator eval;
  ndlog::EvalOptions budget;
  budget.max_iterations = 200;
  try {
    eval.run(core::distance_vector_program(), core::link_facts(core::ring_topology(3)),
             budget);
    std::cout << "unexpected: converged\n";
  } catch (const ndlog::DivergenceError& e) {
    std::cout << "DIVERGED as expected: " << e.what() << "\n";
  }
  auto bounded = eval.run(
      ndlog::parse_program(core::distance_vector_bounded_source(16), "dv_bounded"),
      core::link_facts(core::ring_topology(3)));
  std::cout << "bounded variant converges: " << bounded.database.size("bestHopCost")
            << " best routes\n\n";

  std::cout << "=== 2. Model checking the failure scenario ===\n";
  mc::DvConfig line;
  line.node_count = 3;
  line.edges = {{0, 1, 1}, {1, 2, 1}};
  line.failed_link = {{0, 1}};
  line.infinity_threshold = 10;
  auto result = mc::check_count_to_infinity(line);
  std::cout << "plain DV after link(0,1) failure: invariant cost<10 "
            << (result.property_holds ? "holds (unexpected!)" : "VIOLATED") << "\n";
  if (!result.property_holds) {
    std::cout << "count-to-infinity trace (" << result.counterexample.size()
              << " states):\n";
    for (const auto& s : result.counterexample) std::cout << "  " << s << "\n";
  }
  line.split_horizon = true;
  auto fixed = mc::check_count_to_infinity(line);
  std::cout << "with split horizon: invariant "
            << (fixed.property_holds ? "HOLDS (state space exhausted)" : "violated")
            << " [" << fixed.states_explored << " states]\n\n";

  std::cout << "=== 3. Path-vector contrast ===\n";
  auto pv = eval.run(core::path_vector_program(), core::link_facts(core::ring_topology(3)));
  std::cout << "path-vector on the same ring: " << pv.database.size("bestPath")
            << " best paths, " << pv.stats.iterations << " fixpoint rounds — terminates "
            << "because f_inPath discards cyclic routes\n";
  return 0;
}
