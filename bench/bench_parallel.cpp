// Shard-parallel evaluation benchmark: the 16-node path-vector line run
// serial (workers=0) vs under the certified worker pool at 1, 2 and 4
// workers. workers=1 exercises the full round machinery (batching, shard
// routing, deterministic merge) with no extra threads, so its gap to serial
// is the pure bookkeeping overhead of the parallel path — acceptance
// (ISSUE 9): <= 10% on this workload, recorded as
// parallel/bench/overhead_pct_x100 in BENCH_parallel.json and gated by
// scripts/check.sh.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "core/protocols.hpp"
#include "runtime/simulator.hpp"

namespace {

using namespace fvn;
using runtime::EngineKind;

struct Run {
  runtime::SimStats stats;
  double seconds = 0;
};

Run run_path_vector(std::size_t nodes, std::size_t workers, EngineKind engine) {
  runtime::SimOptions options;
  options.engine = engine;
  options.workers = workers;
  const auto t0 = std::chrono::steady_clock::now();
  runtime::Simulator sim(core::path_vector_program(), options);
  sim.inject_all(core::link_facts(core::line_topology(nodes)));
  Run out;
  out.stats = sim.run();
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

// Best-of-N to damp scheduler noise: the workers=1 overhead number gates a
// <=10% check, so we compare the fastest observed run of each variant.
Run best_of(std::size_t nodes, std::size_t workers, EngineKind engine, int reps) {
  Run best = run_path_vector(nodes, workers, engine);
  for (int i = 1; i < reps; ++i) {
    auto next = run_path_vector(nodes, workers, engine);
    if (next.seconds < best.seconds) best = next;
  }
  return best;
}

void PathVectorWorkers(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const auto nodes = static_cast<std::size_t>(state.range(1));
  const bool dataflow = state.range(2) != 0;
  Run last;
  for (auto _ : state) {
    last = run_path_vector(nodes, workers,
                           dataflow ? EngineKind::Dataflow : EngineKind::Interpreter);
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel((dataflow ? "dataflow/" : "interpreter/") +
                 (workers == 0 ? "serial" : "workers=" + std::to_string(workers)));
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["tuples"] = static_cast<double>(last.stats.tuples_derived);
  state.counters["tuples_per_s"] = benchmark::Counter(
      static_cast<double>(last.stats.tuples_derived) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(PathVectorWorkers)
    ->Args({0, 16, 0})
    ->Args({1, 16, 0})
    ->Args({2, 16, 0})
    ->Args({4, 16, 0})
    ->Args({0, 16, 1})
    ->Args({1, 16, 1})
    ->Args({2, 16, 1})
    ->Args({4, 16, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "parallel");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Instrumented workload: 16-node path-vector line on the interpreter — the
  // acceptance workload even in smoke mode (fixed per-round costs dominate
  // below ~12 nodes and would fail the gate on a workload it never claims;
  // the full run is ~40 ms of simulation, cheap enough for bench_smoke).
  const std::size_t nodes = 16;
  const int reps = harness.smoke() ? 3 : 5;
  const auto serial = best_of(nodes, 0, EngineKind::Interpreter, reps);
  const auto one = best_of(nodes, 1, EngineKind::Interpreter, reps);
  const auto two = best_of(nodes, 2, EngineKind::Interpreter, reps);
  const auto four = best_of(nodes, 4, EngineKind::Interpreter, reps);
  const double overhead_pct =
      serial.seconds > 0 ? (one.seconds - serial.seconds) / serial.seconds * 100.0
                         : 0;

  auto& m = harness.metrics();
  m.counter("parallel/bench/nodes").add(nodes);
  m.counter("parallel/bench/serial_us")
      .add(static_cast<std::uint64_t>(serial.seconds * 1e6));
  m.counter("parallel/bench/workers1_us")
      .add(static_cast<std::uint64_t>(one.seconds * 1e6));
  m.counter("parallel/bench/workers2_us")
      .add(static_cast<std::uint64_t>(two.seconds * 1e6));
  m.counter("parallel/bench/workers4_us")
      .add(static_cast<std::uint64_t>(four.seconds * 1e6));
  m.counter("parallel/bench/tuples").add(serial.stats.tuples_derived);
  // Fixed-point percent: 1000 = 10.00% (clamped at 0 for noise-negative runs).
  m.counter("parallel/bench/overhead_pct_x100")
      .add(static_cast<std::uint64_t>(std::max(0.0, overhead_pct) * 100));
  // The parallel runs must actually take the parallel path and replay the
  // serial derivations exactly, else the overhead number is meaningless.
  const bool valid = one.stats.parallel_active && four.stats.parallel_active &&
                     one.stats.tuples_derived == serial.stats.tuples_derived &&
                     four.stats.tuples_derived == serial.stats.tuples_derived;
  m.counter("parallel/bench/derivations_match").add(valid ? 1 : 0);

  if (!harness.smoke()) {
    std::cout << "\n=== shard-parallel overhead (" << nodes
              << "-node path-vector, interpreter) ===\n"
              << "serial:    " << serial.seconds * 1000 << " ms\n"
              << "workers=1: " << one.seconds * 1000 << " ms ("
              << overhead_pct << "% overhead, budget 10%)\n"
              << "workers=2: " << two.seconds * 1000 << " ms\n"
              << "workers=4: " << four.seconds * 1000 << " ms\n";
  }
  if (!valid) {
    std::cerr << "bench_parallel: parallel runs diverged from serial\n";
    return 1;
  }
  return harness.finish();
}
