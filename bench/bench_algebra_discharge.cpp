// E6 — paper §3.3.2: "The proof obligations are automatically discharged for
// all the base algebras developed in [24]. Furthermore ... the proofs that
// protocols obtained from composing two well-behaved protocols ... are
// automatically discharged by PVS's type checker."
//
// Benchmarks automatic obligation discharge for every base algebra and for
// lexical-product compositions (including the paper's BGPSystem), plus the
// generalized solver's convergence behaviour as carrier size grows.
#include <benchmark/benchmark.h>

#include <iostream>

#include "algebra/routing_algebra.hpp"
#include "algebra/solver.hpp"
#include "bench_util.hpp"

namespace {

using namespace fvn::algebra;
using fvn::ndlog::Value;

RoutingAlgebra algebra_by_index(int which) {
  switch (which) {
    case 0: return add_algebra();
    case 1: return hop_algebra();
    case 2: return lp_algebra();
    case 3: return bandwidth_algebra();
    case 4: return reliability_algebra();
    case 5: return bgp_system();
    default: return lex_product(add_algebra(8, 3), hop_algebra(8));
  }
}

void DischargeObligations(benchmark::State& state) {
  auto alg = algebra_by_index(static_cast<int>(state.range(0)));
  DischargeReport last;
  for (auto _ : state) {
    last = discharge(alg);
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(alg.name);
  state.counters["checks"] = static_cast<double>(last.total_checks);
  state.counters["convergent"] = last.convergent() ? 1 : 0;
}
BENCHMARK(DischargeObligations)->DenseRange(0, 6);

void DischargeScalesWithCarrier(benchmark::State& state) {
  const auto size = static_cast<std::int64_t>(state.range(0));
  auto alg = add_algebra(size, 5);
  DischargeReport last;
  for (auto _ : state) {
    last = discharge(alg);
    benchmark::DoNotOptimize(last);
  }
  state.counters["carrier"] = static_cast<double>(alg.signatures.size());
  state.counters["checks"] = static_cast<double>(last.total_checks);
}
BENCHMARK(DischargeScalesWithCarrier)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

void LexProductDischarge(benchmark::State& state) {
  const auto size = static_cast<std::int64_t>(state.range(0));
  auto lex = lex_product(add_algebra(size, 2), add_algebra(size, 2));
  DischargeReport last;
  for (auto _ : state) {
    last = discharge(lex);
    benchmark::DoNotOptimize(last);
  }
  state.counters["carrier"] = static_cast<double>(lex.signatures.size());
  state.counters["convergent"] = last.convergent() ? 1 : 0;
}
BENCHMARK(LexProductDischarge)->Arg(4)->Arg(6)->Arg(8);

void SolverConvergenceRounds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto alg = add_algebra(100000, 10);
  std::vector<LabeledEdge> edges;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    edges.push_back({i, i + 1, Value::integer(1)});
    edges.push_back({i + 1, i, Value::integer(1)});
  }
  SolveResult last;
  for (auto _ : state) {
    last = solve(alg, n, edges, 0);
    benchmark::DoNotOptimize(last);
  }
  state.counters["rounds"] = static_cast<double>(last.iterations);
  state.counters["converged"] = last.converged ? 1 : 0;
}
BENCHMARK(SolverConvergenceRounds)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "algebra_discharge");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  if (!harness.smoke()) {
    std::cout << "\n=== E6: metarouting obligation discharge (paper section 3.3.2) ===\n"
              << "paper:    obligations automatically discharged for all base algebras\n"
              << "          and compositions; monotonicity+isotonicity => convergence\n"
              << "measured:\n";
    for (int i = 0; i <= 6; ++i) {
      std::cout << "  " << discharge(algebra_by_index(i)).to_string() << "\n";
    }
  }

  // Metrics JSON: per-algebra obligation-check totals and the convergence
  // verdict count across all seven algebras.
  {
    auto& registry = harness.metrics();
    for (int i = 0; i <= 6; ++i) {
      auto report = discharge(algebra_by_index(i));
      registry.counter("algebra/" + report.algebra + "/checks").add(report.total_checks);
      registry.counter("algebra/convergent").add(report.convergent() ? 1 : 0);
    }
  }
  return harness.finish();
}
