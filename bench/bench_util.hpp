// Shared harness for FVN benchmark binaries: strips the fvn-specific flags
// before Google Benchmark parses argv, owns the obs::Registry each binary
// fills with a small instrumented workload after RunSpecifiedBenchmarks, and
// writes + re-validates the BENCH_<name>.json metrics document. This is what
// makes BENCH_*.json trajectories comparable across runs, and what the
// `bench_smoke` CTest label asserts on.
//
// Flags (consumed here, invisible to benchmark::Initialize):
//   --fvn-smoke                 skip the heavy post-run report sections
//   --fvn-metrics-out=<path>    where to write the metrics JSON
//                               (default: BENCH_<name>.json in the CWD)
#pragma once

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace fvn::bench {

class Harness {
 public:
  Harness(int& argc, char** argv, std::string name)
      : name_(std::move(name)), metrics_path_("BENCH_" + name_ + ".json") {
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      constexpr std::string_view kOut = "--fvn-metrics-out=";
      if (arg == "--fvn-smoke") {
        smoke_ = true;
      } else if (arg.starts_with(kOut)) {
        metrics_path_ = std::string(arg.substr(kOut.size()));
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
    argv[argc] = nullptr;
  }

  /// Smoke mode (the bench_smoke CTest runs every binary with
  /// `--benchmark_filter=^$ --fvn-smoke`): no benchmark iterations, no heavy
  /// post-run report — only the instrumented workload and the metrics JSON.
  bool smoke() const noexcept { return smoke_; }
  obs::Registry& metrics() noexcept { return registry_; }
  const std::string& metrics_path() const noexcept { return metrics_path_; }

  /// Write {"bench":<name>,"metrics":<registry JSON>} to metrics_path, then
  /// re-read and re-parse the file, printing `FVN_METRICS_OK <path>` only if
  /// the round trip yields valid JSON. Returns main's exit code.
  int finish() {
    const std::string doc = "{\"bench\":\"" + obs::json_escape(name_) +
                            "\",\"metrics\":" + registry_.to_json() + "}";
    try {
      obs::write_file(metrics_path_, doc);
    } catch (const std::exception& e) {
      std::cerr << "FVN_METRICS_WRITE_FAILED: " << e.what() << "\n";
      return 1;
    }
    std::ifstream in(metrics_path_);
    std::ostringstream read_back;
    read_back << in.rdbuf();
    if (!in || !obs::json_valid(read_back.str())) {
      std::cerr << "FVN_METRICS_INVALID: " << metrics_path_ << "\n";
      return 1;
    }
    std::cout << "FVN_METRICS_OK " << metrics_path_ << "\n";
    return 0;
  }

 private:
  std::string name_;
  std::string metrics_path_;
  bool smoke_ = false;
  obs::Registry registry_;
};

}  // namespace fvn::bench
