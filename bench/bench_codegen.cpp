// E4 — paper §3.2.2: property-preserving generation of NDlog programs from
// verified component-based specifications (the tc example and the Figure-2
// BGP pipeline).
//
// Benchmarks generation throughput as the component pipeline grows, the
// generated program's evaluation, and the property-preservation check
// (generated logic vs generated NDlog agreement on concrete inputs).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "bgp/component_model.hpp"
#include "logic/finite_model.hpp"
#include "ndlog/eval.hpp"
#include "translate/components.hpp"

namespace {

using namespace fvn;
using ndlog::Tuple;
using ndlog::Value;
using translate::AtomicComponent;
using translate::CompositeComponent;
using translate::PortSchema;

/// A chain of n "+1" components: stage_i consumes stage_{i-1}'s output.
CompositeComponent chain(std::size_t n) {
  CompositeComponent out;
  out.name = "chain" + std::to_string(n);
  for (std::size_t i = 0; i < n; ++i) {
    AtomicComponent c;
    c.name = "stage" + std::to_string(i);
    const std::string in = i == 0 ? "chain_in" : "s" + std::to_string(i - 1);
    const std::string out_pred = i + 1 == n ? "chain_out" : "s" + std::to_string(i);
    const std::string in_var = "X" + std::to_string(i);
    const std::string out_var = "X" + std::to_string(i + 1);
    c.inputs = {PortSchema{in, {in_var}}};
    c.outputs = {PortSchema{out_pred, {out_var}}};
    ndlog::Comparison step;
    step.op = ndlog::CmpOp::Eq;
    step.lhs = ndlog::Term::var(out_var);
    step.rhs = ndlog::Term::binary(ndlog::BinOp::Add, ndlog::Term::var(in_var),
                                   ndlog::Term::constant_of(Value::integer(1)));
    c.constraints = {step};
    out.parts.push_back(std::move(c));
  }
  return out;
}

void GenerateNdlogFromChain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto model = chain(n);
  for (auto _ : state) {
    auto program = translate::generate_ndlog(model);
    benchmark::DoNotOptimize(program);
  }
  state.counters["components"] = static_cast<double>(n);
}
BENCHMARK(GenerateNdlogFromChain)->Arg(3)->Arg(10)->Arg(30)->Arg(100);

void GenerateLogicFromChain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto model = chain(n);
  for (auto _ : state) {
    auto theory = translate::generate_logic(model);
    benchmark::DoNotOptimize(theory);
  }
}
BENCHMARK(GenerateLogicFromChain)->Arg(3)->Arg(10)->Arg(30)->Arg(100);

void EvaluateGeneratedChain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto program = translate::generate_ndlog(chain(n));
  ndlog::Evaluator eval;
  std::vector<Tuple> facts = {Tuple("chain_in", {Value::integer(0)})};
  std::int64_t result_value = 0;
  for (auto _ : state) {
    auto db = eval.run(program, facts).database;
    result_value = db.relation("chain_out").begin()->at(0).as_int();
    benchmark::DoNotOptimize(db);
  }
  state.counters["output"] = static_cast<double>(result_value);  // == n
}
BENCHMARK(EvaluateGeneratedChain)->Arg(3)->Arg(10)->Arg(30);

void GenerateBgpPtModel(benchmark::State& state) {
  for (auto _ : state) {
    auto program = translate::generate_ndlog(bgp::pt_model(), bgp::pt_location_schema());
    auto theory = translate::generate_logic(bgp::pt_model());
    benchmark::DoNotOptimize(program);
    benchmark::DoNotOptimize(theory);
  }
}
BENCHMARK(GenerateBgpPtModel);

void PropertyPreservationCheck(benchmark::State& state) {
  // tc: generated-logic vs generated-NDlog agreement over a small input grid.
  auto tc = translate::example_tc();
  auto program = translate::generate_ndlog(tc);
  auto theory = translate::generate_logic(tc);
  ndlog::Evaluator eval;
  std::size_t agreements = 0;
  for (auto _ : state) {
    agreements = 0;
    for (std::int64_t i1 = 0; i1 <= 3; ++i1) {
      for (std::int64_t i2 = 0; i2 <= 3; ++i2) {
        auto db = eval.run(program, {Tuple("t1_in", {Value::integer(i1)}),
                                     Tuple("t2_in", {Value::integer(i2)})})
                      .database;
        logic::FiniteModel model;
        model.load_database(db);
        model.add_metric_range(0, 12);
        std::vector<logic::FormulaPtr> parts;
        for (const auto& def : theory.definitions) {
          if (def.pred_name == "tc") continue;
          parts.push_back(def.body());
        }
        auto combined = logic::Formula::exists(
            {logic::TypedVar{"O1", logic::Sort::Metric},
             logic::TypedVar{"O2", logic::Sort::Metric}},
            logic::Formula::conj(std::move(parts)));
        for (std::int64_t o3 = 0; o3 <= 12; ++o3) {
          std::map<std::string, Value> env = {{"I1", Value::integer(i1)},
                                              {"I2", Value::integer(i2)},
                                              {"O3", Value::integer(o3)}};
          const bool logic_says = model.eval(*combined, env);
          const bool ndlog_says =
              db.contains(Tuple("t3_out", {Value::integer(o3)}));
          if (logic_says == ndlog_says) ++agreements;
        }
      }
    }
    benchmark::DoNotOptimize(agreements);
  }
  state.counters["agreements"] = static_cast<double>(agreements);
  state.counters["checked"] = 4.0 * 4.0 * 13.0;
}
BENCHMARK(PropertyPreservationCheck);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "codegen");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  auto program = translate::generate_ndlog(translate::example_tc());
  if (!harness.smoke()) {
    std::cout << "\n=== E4: component -> NDlog generation (paper section 3.2.2) ===\n"
              << "paper:    tc = {t1,t2,t3} generates three NDlog rules; translation\n"
              << "          is property-preserving\n"
              << "measured: generated rules for tc:\n";
    for (const auto& rule : program.rules) std::cout << "  " << rule.to_string() << "\n";
  }

  // Metrics JSON: size of the generated program (trajectory of the tc
  // example's codegen output).
  harness.metrics().counter("codegen/tc/rules").add(program.rules.size());
  return harness.finish();
}
