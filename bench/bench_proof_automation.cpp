// E7 — paper §4.3: "typically two-thirds of the proof steps can be automated
// by the theorem prover's default proof strategies."
//
// Runs a corpus of theorems about the translated path-vector program, each
// with the natural interactive script (the scripted commands a human would
// type), and measures the fraction of executed proof steps discharged by the
// automation (grind micro-steps) versus scripted by hand.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/protocols.hpp"
#include "prover/prover.hpp"
#include "translate/ndlog_to_logic.hpp"

namespace {

using namespace fvn;
using logic::Formula;
using logic::FormulaPtr;
using logic::LTerm;
using logic::Sort;
using logic::TypedVar;
using ndlog::CmpOp;
using prover::Command;

struct CorpusEntry {
  logic::Theorem theorem;
  std::vector<Command> script;
};

FormulaPtr forall_sdpc(FormulaPtr body) {
  return Formula::forall({TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node},
                          TypedVar{"P", Sort::Path}, TypedVar{"C", Sort::Metric}},
                         std::move(body));
}

std::vector<CorpusEntry> corpus() {
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto C = LTerm::var("C");
  auto P = LTerm::var("P");
  auto C1 = LTerm::var("C1");
  auto C2 = LTerm::var("C2");
  auto P2 = LTerm::var("P2");
  std::vector<CorpusEntry> out;

  out.push_back({logic::Theorem{
                     "bestPathStrong",
                     Formula::forall(
                         {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node},
                          TypedVar{"C", Sort::Metric}, TypedVar{"P", Sort::Path}},
                         Formula::implies(
                             Formula::pred("bestPath", {S, D, P, C}),
                             Formula::negate(Formula::exists(
                                 {TypedVar{"C2", Sort::Metric}, TypedVar{"P2", Sort::Path}},
                                 Formula::conj({Formula::pred("path", {S, D, P2, C2}),
                                                Formula::cmp(CmpOp::Lt, C2, C)})))))},
                 {Command::skolem(), Command::flatten(), Command::skolem(),
                  Command::expand("bestPath"), Command::expand("bestPathCost"),
                  Command::inst({LTerm::var("P2!6"), LTerm::var("C2!5")}),
                  Command::grind()}});

  out.push_back({logic::Theorem{"pathHeadIsSource",
                                forall_sdpc(Formula::implies(
                                    Formula::pred("path", {S, D, P, C}),
                                    Formula::eq(LTerm::func("f_head", {P}), S)))},
                 {Command::induct("path"), Command::grind()}});

  out.push_back({logic::Theorem{"pathLastIsDest",
                                forall_sdpc(Formula::implies(
                                    Formula::pred("path", {S, D, P, C}),
                                    Formula::eq(LTerm::func("f_last", {P}), D)))},
                 {Command::induct("path"), Command::grind()}});

  out.push_back({logic::Theorem{
                     "pathSizeGe2",
                     forall_sdpc(Formula::implies(
                         Formula::pred("path", {S, D, P, C}),
                         Formula::cmp(CmpOp::Ge, LTerm::func("f_size", {P}),
                                      LTerm::constant_of(logic::Value::integer(2)))))},
                 {Command::induct("path"), Command::grind()}});

  out.push_back({logic::Theorem{"bestPathImpliesPath",
                                forall_sdpc(Formula::implies(
                                    Formula::pred("bestPath", {S, D, P, C}),
                                    Formula::pred("path", {S, D, P, C})))},
                 {Command::grind()}});

  out.push_back(
      {logic::Theorem{
           "bestPathCostUnique",
           Formula::forall(
               {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node},
                TypedVar{"C1", Sort::Metric}, TypedVar{"C2", Sort::Metric}},
               Formula::implies(
                   Formula::conj({Formula::pred("bestPathCost", {S, D, C1}),
                                  Formula::pred("bestPathCost", {S, D, C2})}),
                   Formula::eq(C1, C2)))},
       {Command::grind()}});
  return out;
}

/// Second corpus over the reachability program's theory.
std::vector<CorpusEntry> reachable_corpus() {
  auto X = LTerm::var("X");
  auto Y = LTerm::var("Y");
  auto C = LTerm::var("C");
  std::vector<CorpusEntry> out;
  out.push_back({logic::Theorem{
                     "linkImpliesReachable",
                     Formula::forall({TypedVar{"X", Sort::Node}, TypedVar{"Y", Sort::Node},
                                      TypedVar{"C", Sort::Metric}},
                                     Formula::implies(Formula::pred("link", {X, Y, C}),
                                                      Formula::pred("reachable", {X, Y})))},
                 {Command::expand("reachable"), Command::grind()}});
  out.push_back({logic::Theorem{
                     "reachableHasFirstHop",
                     Formula::forall(
                         {TypedVar{"X", Sort::Node}, TypedVar{"Y", Sort::Node}},
                         Formula::implies(
                             Formula::pred("reachable", {X, Y}),
                             Formula::exists({TypedVar{"Z", Sort::Node},
                                              TypedVar{"C", Sort::Metric}},
                                             Formula::pred("link", {X, LTerm::var("Z"),
                                                                    LTerm::var("C")}))))},
                 {Command::induct("reachable"), Command::grind()}});
  return out;
}

void ProveWholeCorpus(benchmark::State& state) {
  auto theory = translate::to_logic(core::path_vector_program());
  std::size_t manual = 0;
  std::size_t automated = 0;
  std::size_t proved = 0;
  for (auto _ : state) {
    manual = automated = proved = 0;
    for (const auto& entry : corpus()) {
      prover::Prover prover(theory);
      auto result = prover.prove(entry.theorem, entry.script);
      manual += result.manual_steps();
      automated += result.automated_steps();
      if (result.proved) ++proved;
    }
    benchmark::DoNotOptimize(proved);
  }
  state.counters["theorems_proved"] = static_cast<double>(proved);
  state.counters["manual_steps"] = static_cast<double>(manual);
  state.counters["automated_steps"] = static_cast<double>(automated);
  state.counters["automated_fraction"] =
      static_cast<double>(automated) / static_cast<double>(automated + manual);
}
BENCHMARK(ProveWholeCorpus);

void GrindOnlyCoverage(benchmark::State& state) {
  // How many corpus theorems does the default strategy prove with NO human
  // script at all?
  auto theory = translate::to_logic(core::path_vector_program());
  std::size_t proved = 0;
  for (auto _ : state) {
    proved = 0;
    for (const auto& entry : corpus()) {
      prover::Prover prover(theory);
      if (prover.prove_auto(entry.theorem).proved) ++proved;
    }
    benchmark::DoNotOptimize(proved);
  }
  state.counters["grind_only_proved"] = static_cast<double>(proved);
  state.counters["corpus_size"] = static_cast<double>(corpus().size());
}
BENCHMARK(GrindOnlyCoverage);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "proof_automation");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::size_t manual = 0, automated = 0;
  const bool verbose = !harness.smoke();
  if (verbose) {
    std::cout << "\n=== E7: proof automation (paper section 4.3) ===\n"
              << "paper:    'typically two-thirds of the proof steps can be automated'\n"
              << "measured per theorem (manual scripted steps vs automated micro-steps):\n";
  }
  // Every corpus proof reports into the shared registry: the per-tactic and
  // per-grind-micro-step counters are the automation trajectory in
  // BENCH_*.json.
  auto run_corpus = [&](const logic::Theory& theory,
                        const std::vector<CorpusEntry>& entries) {
    for (const auto& entry : entries) {
      prover::Prover prover(theory);
      prover.set_metrics(&harness.metrics());
      auto result = prover.prove(entry.theorem, entry.script);
      manual += result.manual_steps();
      automated += result.automated_steps();
      if (verbose) {
        std::printf("  %-22s %s manual=%zu automated=%zu\n", entry.theorem.name.c_str(),
                    result.proved ? "proved" : "OPEN  ", result.manual_steps(),
                    result.automated_steps());
      }
    }
  };
  run_corpus(translate::to_logic(core::path_vector_program()), corpus());
  run_corpus(translate::to_logic(core::reachable_program()), reachable_corpus());
  harness.metrics().counter("prover/steps/manual").add(manual);
  harness.metrics().counter("prover/steps/automated").add(automated);
  if (verbose) {
    const double fraction =
        static_cast<double>(automated) / static_cast<double>(automated + manual);
    std::printf(
        "  TOTAL: manual=%zu automated=%zu -> automated fraction %.2f (paper ~0.67)\n",
        manual, automated, fraction);
  }
  return harness.finish();
}
