// E8 — paper §2.2 ("declarative networks perform efficiently") and §4.2 (the
// soft-state hard-state rewrite is "heavy-weight and cumbersome").
//
// Benchmarks the NDlog engine: semi-naive vs naive evaluation (the E8
// ablation), scaling across topology sizes and protocols, and the overhead of
// the §4.2 soft-state rewrite relative to native runtime timeouts.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/protocols.hpp"
#include "ndlog/query.hpp"
#include "ndlog/eval.hpp"
#include "runtime/simulator.hpp"
#include "translate/softstate.hpp"

namespace {

using namespace fvn;

void PathVectorEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool semi = state.range(1) != 0;
  auto links = core::link_facts(core::random_topology(n, n / 2, 3));
  ndlog::Evaluator eval;
  ndlog::EvalOptions options;
  options.semi_naive = semi;
  ndlog::EvalStats last;
  for (auto _ : state) {
    auto result = eval.run(core::path_vector_program(), links, options);
    last = result.stats;
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(semi ? "semi-naive" : "naive");
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["derived"] = static_cast<double>(last.tuples_derived);
  state.counters["firings"] = static_cast<double>(last.rule_firings);
}
BENCHMARK(PathVectorEval)
    ->Args({6, 1})
    ->Args({6, 0})
    ->Args({8, 1})
    ->Args({8, 0})
    ->Args({10, 1})
    ->Args({10, 0})
    ->Args({12, 1})
    ->Args({12, 0});

void IndexAblation(benchmark::State& state) {
  // Index-probe vs full-scan joins on the same workload.
  const bool use_index = state.range(0) != 0;
  auto links = core::link_facts(core::random_topology(10, 8, 3));
  ndlog::Evaluator eval;
  ndlog::EvalOptions options;
  options.use_index = use_index;
  ndlog::EvalStats last;
  for (auto _ : state) {
    auto result = eval.run(core::path_vector_program(), links, options);
    last = result.stats;
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(use_index ? "indexed" : "scan");
  state.counters["join_probes"] = static_cast<double>(last.join_probes);
}
BENCHMARK(IndexAblation)->Arg(1)->Arg(0);

void QueryRestriction(benchmark::State& state) {
  // Goal-directed querying: relevance restriction avoids the aggregate
  // strata when only `path` is asked for.
  const bool restricted = state.range(0) != 0;
  auto program = core::path_vector_program();
  auto links = core::link_facts(core::random_topology(10, 6, 9));
  ndlog::Evaluator eval;
  for (auto _ : state) {
    if (restricted) {
      auto result = ndlog::query(program, "path(@n0, D, P, C)", links);
      benchmark::DoNotOptimize(result);
    } else {
      auto result = eval.run(program, links);
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetLabel(restricted ? "goal-directed" : "full");
}
BENCHMARK(QueryRestriction)->Arg(1)->Arg(0);

void ReachabilityScaling(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto links = core::link_facts(core::random_topology(n, n, 5));
  ndlog::Evaluator eval;
  for (auto _ : state) {
    auto result = eval.run(core::reachable_program(), links);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(ReachabilityScaling)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void LinkStateEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto links = core::link_facts(core::line_topology(n));
  ndlog::Evaluator eval;
  for (auto _ : state) {
    auto result = eval.run(core::link_state_program(), links);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(LinkStateEval)->Arg(4)->Arg(6)->Arg(8);

void ParserThroughput(benchmark::State& state) {
  const std::string source = core::policy_path_vector_source();
  std::size_t rules = 0;
  for (auto _ : state) {
    auto program = ndlog::parse_program(source);
    rules = program.rules.size();
    benchmark::DoNotOptimize(program);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * source.size()));
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(ParserThroughput);

// --- soft-state ablation (§4.2) ---

const char* kSoftReach = R"(
  materialize(link, 10, infinity, keys(1,2)).
  t1 reach(@S,D) :- link(@S,D,C).
  t2 reach(@S,D) :- link(@S,Z,C), reach(@Z,D).
)";

void SoftStateRewrittenEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto program = ndlog::parse_program(kSoftReach, "soft_reach");
  auto rewrite = translate::soft_to_hard(program);
  auto facts =
      translate::stamp_facts(program, core::link_facts(core::line_topology(n)), 0.0);
  ndlog::Evaluator eval;
  ndlog::EvalStats last;
  for (auto _ : state) {
    auto result = eval.run(rewrite.program, facts);
    last = result.stats;
    benchmark::DoNotOptimize(result);
  }
  state.counters["extra_body_elems"] = static_cast<double>(rewrite.extra_body_elements);
  state.counters["firings"] = static_cast<double>(last.rule_firings);
}
BENCHMARK(SoftStateRewrittenEval)->Arg(6)->Arg(10)->Arg(14);

void SoftStateNativeRuntime(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto program = ndlog::parse_program(kSoftReach, "soft_reach");
  auto facts = core::link_facts(core::line_topology(n));
  runtime::SimStats last;
  for (auto _ : state) {
    runtime::Simulator sim(program, {});
    sim.inject_all(facts);
    last = sim.run();
    benchmark::DoNotOptimize(last);
  }
  state.counters["expirations"] = static_cast<double>(last.expirations);
}
BENCHMARK(SoftStateNativeRuntime)->Arg(6)->Arg(10)->Arg(14);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "ndlog_eval");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  if (!harness.smoke()) {
    std::cout << "\n=== E8: evaluation engine + soft-state ablation ===\n"
              << "paper:    declarative networks 'perform efficiently'; the section-4.2\n"
              << "          soft-state rewrite is heavy-weight\n";
    {
      auto links = core::link_facts(core::random_topology(10, 5, 3));
      ndlog::Evaluator eval;
      ndlog::EvalOptions semi, naive;
      naive.semi_naive = false;
      auto a = eval.run(core::path_vector_program(), links, semi);
      auto b = eval.run(core::path_vector_program(), links, naive);
      std::printf("  semi-naive: %zu rule firings; naive: %zu (x%.1f work)\n",
                  a.stats.rule_firings, b.stats.rule_firings,
                  static_cast<double>(b.stats.rule_firings) /
                      static_cast<double>(a.stats.rule_firings));
    }
    {
      auto program = ndlog::parse_program(kSoftReach, "soft_reach");
      auto rewrite = translate::soft_to_hard(program);
      std::size_t before = 0, after = 0;
      for (const auto& r : program.rules) before += r.body.size();
      for (const auto& r : rewrite.program.rules) after += r.body.size();
      std::printf(
          "  soft-state rewrite: body elements %zu -> %zu (+%zu), attributes +%zu\n",
          before, after, rewrite.extra_body_elements, rewrite.extra_attributes);
    }
  }

  // Metrics JSON: one instrumented path-vector evaluation, so BENCH_*.json
  // carries the per-rule firing/probe series across commits.
  {
    ndlog::Evaluator eval;
    ndlog::EvalOptions options;
    options.metrics = &harness.metrics();
    auto links = core::link_facts(core::random_topology(8, 4, 3));
    eval.run(core::path_vector_program(), links, options);
  }
  return harness.finish();
}
