// E1 — paper §3.1: "The bestPathStrong theorem takes 7 proof steps. ... PVS
// requires only a fraction of a second to carry out the actual proof."
//
// Benchmarks the full arc-4 + arc-5 chain: NDlog parse → logic translation →
// scripted 7-step proof replay, and the fully automatic (grind) proof.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/protocols.hpp"
#include "prover/prover.hpp"
#include "translate/ndlog_to_logic.hpp"

namespace {

using namespace fvn;
using logic::Formula;
using logic::FormulaPtr;
using logic::LTerm;
using logic::Sort;
using logic::TypedVar;
using prover::Command;

logic::Theorem best_path_strong() {
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto C = LTerm::var("C");
  auto P = LTerm::var("P");
  auto C2 = LTerm::var("C2");
  auto P2 = LTerm::var("P2");
  return logic::Theorem{
      "bestPathStrong",
      Formula::forall(
          {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node},
           TypedVar{"C", Sort::Metric}, TypedVar{"P", Sort::Path}},
          Formula::implies(
              Formula::pred("bestPath", {S, D, P, C}),
              Formula::negate(Formula::exists(
                  {TypedVar{"C2", Sort::Metric}, TypedVar{"P2", Sort::Path}},
                  Formula::conj({Formula::pred("path", {S, D, P2, C2}),
                                 Formula::cmp(ndlog::CmpOp::Lt, C2, C)})))))};
}

std::vector<Command> seven_step_script() {
  return {Command::skolem(),
          Command::flatten(),
          Command::skolem(),
          Command::expand("bestPath"),
          Command::expand("bestPathCost"),
          Command::inst({LTerm::var("P2!6"), LTerm::var("C2!5")}),
          Command::grind()};
}

void ScriptedProof(benchmark::State& state) {
  auto theory = translate::to_logic(core::path_vector_program());
  std::size_t steps = 0;
  bool proved = true;
  for (auto _ : state) {
    prover::Prover prover(theory);
    auto result = prover.prove(best_path_strong(), seven_step_script());
    proved = proved && result.proved;
    steps = result.scripted_steps;
    benchmark::DoNotOptimize(result);
  }
  state.counters["scripted_steps"] = static_cast<double>(steps);
  state.counters["proved"] = proved ? 1 : 0;
}
BENCHMARK(ScriptedProof);

void AutomaticProof(benchmark::State& state) {
  auto theory = translate::to_logic(core::path_vector_program());
  std::size_t automated = 0;
  bool proved = true;
  for (auto _ : state) {
    prover::Prover prover(theory);
    auto result = prover.prove_auto(best_path_strong());
    proved = proved && result.proved;
    automated = result.automated_steps();
    benchmark::DoNotOptimize(result);
  }
  state.counters["automated_steps"] = static_cast<double>(automated);
  state.counters["proved"] = proved ? 1 : 0;
}
BENCHMARK(AutomaticProof);

void TranslationOnly(benchmark::State& state) {
  auto program = core::path_vector_program();
  for (auto _ : state) {
    auto theory = translate::to_logic(program);
    benchmark::DoNotOptimize(theory);
  }
}
BENCHMARK(TranslationOnly);

void EndToEnd_ParseTranslateProve(benchmark::State& state) {
  for (auto _ : state) {
    auto program = core::path_vector_program();
    auto theory = translate::to_logic(program);
    prover::Prover prover(theory);
    auto result = prover.prove(best_path_strong(), seven_step_script());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(EndToEnd_ParseTranslateProve);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "prover_optimality");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Paper-comparison row, instrumented: the per-tactic invocation counters
  // and timers land in the BENCH_*.json metrics document.
  auto theory = translate::to_logic(core::path_vector_program());
  prover::Prover prover(theory);
  prover.set_metrics(&harness.metrics());
  auto result = prover.prove(best_path_strong(), seven_step_script());
  if (!harness.smoke()) {
    std::cout << "\n=== E1: route-optimality proof (paper section 3.1) ===\n"
              << "paper:    7 proof steps, 'a fraction of a second'\n"
              << "measured: " << result.scripted_steps << " scripted steps ("
              << result.automated_steps() << " additional automated micro-steps), "
              << result.elapsed_seconds * 1000 << " ms, proved="
              << (result.proved ? "yes" : "NO") << "\n";
  }
  return harness.finish();
}
