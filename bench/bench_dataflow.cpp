// Dataflow-vs-interpreter executor benchmark: the same 16-node path-vector
// workload (plus smaller/larger topologies for scaling) run under both
// SimOptions::engine settings. The engines are operationally equivalent
// (identical fixpoints and message streams — pinned by test_dataflow.cpp),
// so this measures pure executor cost: per-delta join re-evaluation in the
// interpreter vs one compiled element-strand walk in fvn::dataflow.
//
// The instrumented workload records tuples/sec for both engines and the
// speedup into the BENCH_dataflow.json metrics document.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/protocols.hpp"
#include "ndlog/parser.hpp"
#include "runtime/simulator.hpp"

namespace {

using namespace fvn;
using runtime::EngineKind;

struct EngineRun {
  runtime::SimStats stats;
  double seconds = 0;
  double tuples_per_sec = 0;
};

EngineRun run_path_vector(EngineKind engine, std::size_t nodes,
                          bool incremental_aggregates = true) {
  runtime::SimOptions options;
  options.engine = engine;
  options.incremental_aggregates = incremental_aggregates;
  const auto t0 = std::chrono::steady_clock::now();
  runtime::Simulator sim(core::path_vector_program(), options);
  sim.inject_all(core::link_facts(core::line_topology(nodes)));
  EngineRun out;
  out.stats = sim.run();
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.tuples_per_sec =
      out.seconds > 0 ? static_cast<double>(out.stats.tuples_derived) / out.seconds : 0;
  return out;
}

void PathVectorEngine(benchmark::State& state) {
  const auto engine = state.range(0) == 0 ? EngineKind::Interpreter : EngineKind::Dataflow;
  const auto nodes = static_cast<std::size_t>(state.range(1));
  EngineRun last;
  for (auto _ : state) {
    last = run_path_vector(engine, nodes);
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(engine == EngineKind::Dataflow ? "dataflow" : "interpreter");
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["tuples"] = static_cast<double>(last.stats.tuples_derived);
  state.counters["tuples_per_sec"] = last.tuples_per_sec;
  state.counters["messages"] = static_cast<double>(last.stats.messages_sent);
}
BENCHMARK(PathVectorEngine)
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 32})
    ->Args({1, 32})
    ->Unit(benchmark::kMillisecond);

// Cost-guided join ordering (SimOptions::cost_order). The shipped protocol
// plans are already optimal, so the planner's reorder is exercised on the
// same selective-join workload tests/test_cost_crossval.cpp pins: written
// order (a, b, c) builds an n^2 cross-join before c filters it; the
// analyzer's order (a, c, b) is linear. Fixpoints are identical either way.
const char* kReorderProgram =
    "materialize(seed, infinity, infinity, keys(1)).\n"
    "materialize(a, infinity, infinity, keys(1,2)).\n"
    "materialize(b, infinity, infinity, keys(1,2)).\n"
    "materialize(c, infinity, infinity, keys(1,2)).\n"
    "materialize(sel, infinity, infinity, keys(1,2,3)).\n"
    "w1 sel(@S,X,Y) :- a(@S,X), b(@S,Y), c(@S,X,Y).\n";

EngineRun run_reorder(bool cost_order, int n) {
  runtime::SimOptions options;
  options.engine = EngineKind::Dataflow;
  options.cost_order = cost_order;
  const auto program = ndlog::parse_program(kReorderProgram, "reorder");
  std::vector<ndlog::Tuple> facts;
  facts.reserve(static_cast<std::size_t>(n) * 3);
  for (int i = 0; i < n; ++i) {
    const std::string x = "x" + std::to_string(i);
    facts.push_back(ndlog::parse_fact("a(@n0," + x + ")"));
    facts.push_back(ndlog::parse_fact("b(@n0," + x + ")"));
    facts.push_back(ndlog::parse_fact("c(@n0," + x + "," + x + ")"));
  }
  const auto t0 = std::chrono::steady_clock::now();
  runtime::Simulator sim(program, options);
  sim.inject_all(facts);
  EngineRun out;
  out.stats = sim.run();
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.tuples_per_sec =
      out.seconds > 0 ? static_cast<double>(out.stats.tuples_derived) / out.seconds : 0;
  return out;
}

void DataflowCostOrder(benchmark::State& state) {
  const bool cost_order = state.range(0) != 0;
  const int n = static_cast<int>(state.range(1));
  EngineRun last;
  for (auto _ : state) {
    last = run_reorder(cost_order, n);
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(cost_order ? "cost_order" : "written_order");
  state.counters["n"] = static_cast<double>(n);
  state.counters["tuples"] = static_cast<double>(last.stats.tuples_derived);
  state.counters["tuples_per_sec"] = last.tuples_per_sec;
}
BENCHMARK(DataflowCostOrder)
    ->Args({0, 100})
    ->Args({1, 100})
    ->Args({0, 300})
    ->Args({1, 300})
    ->Unit(benchmark::kMillisecond);

void DataflowAggregateAblation(benchmark::State& state) {
  // Incremental aggregate view maintenance vs the full-recompute fallback.
  const bool incremental = state.range(0) != 0;
  EngineRun last;
  for (auto _ : state) {
    last = run_path_vector(EngineKind::Dataflow, 16, incremental);
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(incremental ? "incremental" : "recompute");
  state.counters["tuples_per_sec"] = last.tuples_per_sec;
}
BENCHMARK(DataflowAggregateAblation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "dataflow");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Instrumented workload: the 16-node path-vector comparison that the
  // BENCH_dataflow.json trajectory tracks (smaller in smoke mode).
  const std::size_t nodes = harness.smoke() ? 8 : 16;
  const auto interp = run_path_vector(EngineKind::Interpreter, nodes);
  const auto flow = run_path_vector(EngineKind::Dataflow, nodes);
  const double speedup =
      flow.seconds > 0 ? interp.seconds / flow.seconds : 0;

  auto& m = harness.metrics();
  m.counter("dataflow/bench/nodes").add(nodes);
  m.counter("dataflow/bench/interpreter/tuples").add(interp.stats.tuples_derived);
  m.counter("dataflow/bench/interpreter/tuples_per_sec")
      .add(static_cast<std::uint64_t>(interp.tuples_per_sec));
  m.counter("dataflow/bench/dataflow/tuples").add(flow.stats.tuples_derived);
  m.counter("dataflow/bench/dataflow/tuples_per_sec")
      .add(static_cast<std::uint64_t>(flow.tuples_per_sec));
  // Fixed-point: 100 = parity, 200 = dataflow twice as fast.
  m.counter("dataflow/bench/speedup_x100")
      .add(static_cast<std::uint64_t>(speedup * 100));
  // Equivalence sanity for the trajectory: both engines did the same work.
  m.counter("dataflow/bench/messages_delta")
      .add(interp.stats.messages_sent > flow.stats.messages_sent
               ? interp.stats.messages_sent - flow.stats.messages_sent
               : flow.stats.messages_sent - interp.stats.messages_sent);

  // Cost-guided join ordering on the selective-join workload: written order
  // vs the analyzer's order, same fixpoint.
  const int reorder_n = harness.smoke() ? 100 : 300;
  const auto written = run_reorder(false, reorder_n);
  const auto ordered = run_reorder(true, reorder_n);
  const double order_speedup =
      ordered.seconds > 0 ? written.seconds / ordered.seconds : 0;
  m.counter("dataflow/bench/cost_order/n").add(reorder_n);
  m.counter("dataflow/bench/cost_order/written/tuples_per_sec")
      .add(static_cast<std::uint64_t>(written.tuples_per_sec));
  m.counter("dataflow/bench/cost_order/ordered/tuples_per_sec")
      .add(static_cast<std::uint64_t>(ordered.tuples_per_sec));
  m.counter("dataflow/bench/cost_order/speedup_x100")
      .add(static_cast<std::uint64_t>(order_speedup * 100));
  // Equivalence sanity: the reorder must not change what is derived.
  m.counter("dataflow/bench/cost_order/tuples_delta")
      .add(written.stats.tuples_derived > ordered.stats.tuples_derived
               ? written.stats.tuples_derived - ordered.stats.tuples_derived
               : ordered.stats.tuples_derived - written.stats.tuples_derived);

  if (!harness.smoke()) {
    std::cout << "\n=== dataflow executor vs interpreter (" << nodes
              << "-node path-vector) ===\n"
              << "interpreter: " << interp.stats.tuples_derived << " tuples in "
              << interp.seconds * 1000 << " ms (" << interp.tuples_per_sec
              << " tuples/s)\n"
              << "dataflow:    " << flow.stats.tuples_derived << " tuples in "
              << flow.seconds * 1000 << " ms (" << flow.tuples_per_sec
              << " tuples/s)\n"
              << "speedup:     " << speedup << "x\n"
              << "messages:    " << interp.stats.messages_sent << " vs "
              << flow.stats.messages_sent << " (must match)\n"
              << "\n=== cost-guided join order (n=" << reorder_n
              << " selective join) ===\n"
              << "written order: " << written.seconds * 1000 << " ms\n"
              << "cost order:    " << ordered.seconds * 1000 << " ms\n"
              << "speedup:       " << order_speedup << "x ("
              << written.stats.tuples_derived << " vs "
              << ordered.stats.tuples_derived << " tuples, must match)\n";
  }
  return harness.finish();
}
