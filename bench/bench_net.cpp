// Distributed-runtime benchmark: the same 16-node path-vector workload that
// bench_dataflow runs in the discrete-event Simulator, executed by the
// fvn::net Cluster — 16 real threads exchanging length-prefixed wire frames
// through the in-process transport, ack+retransmit enabled. The fixpoints
// are identical (pinned by test_net_cluster.cpp), so the delta against
// bench_dataflow's numbers is the cost of actual concurrency: encode/decode,
// mailbox synchronization, and termination detection vs a virtual clock.
//
// The instrumented workload records tuples/sec and bytes/sec for both
// engines plus the simulator reference into BENCH_net.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "core/protocols.hpp"
#include "net/cluster.hpp"
#include "runtime/simulator.hpp"

namespace {

using namespace fvn;
using runtime::EngineKind;

struct ClusterRun {
  net::ClusterStats stats;
  double seconds = 0;
  double tuples_per_sec = 0;
  double bytes_per_sec = 0;
};

ClusterRun run_cluster(EngineKind engine, std::size_t nodes, double loss = 0.0,
                       bool cost_order = false) {
  net::ClusterOptions options;
  options.engine = engine;
  options.cost_order = cost_order;
  options.faults.drop_rate = loss;
  options.faults.seed = 7;
  const auto t0 = std::chrono::steady_clock::now();
  net::Cluster cluster(core::path_vector_program(), options);
  cluster.inject_all(core::link_facts(core::line_topology(nodes)));
  ClusterRun out;
  out.stats = cluster.run();
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (out.seconds > 0) {
    out.tuples_per_sec = static_cast<double>(out.stats.tuples_installed) / out.seconds;
    out.bytes_per_sec =
        static_cast<double>(out.stats.transport.bytes_sent) / out.seconds;
  }
  return out;
}

double run_simulator_reference(EngineKind engine, std::size_t nodes) {
  runtime::SimOptions options;
  options.engine = engine;
  const auto t0 = std::chrono::steady_clock::now();
  runtime::Simulator sim(core::path_vector_program(), options);
  sim.inject_all(core::link_facts(core::line_topology(nodes)));
  const auto stats = sim.run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return seconds > 0 ? static_cast<double>(stats.tuples_derived) / seconds : 0;
}

void ClusterPathVector(benchmark::State& state) {
  const auto engine = state.range(0) == 0 ? EngineKind::Interpreter : EngineKind::Dataflow;
  const auto nodes = static_cast<std::size_t>(state.range(1));
  ClusterRun last;
  for (auto _ : state) {
    last = run_cluster(engine, nodes);
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(engine == EngineKind::Dataflow ? "dataflow" : "interpreter");
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["tuples_per_sec"] = last.tuples_per_sec;
  state.counters["bytes_per_sec"] = last.bytes_per_sec;
  state.counters["messages"] = static_cast<double>(last.stats.messages_sent);
}
BENCHMARK(ClusterPathVector)
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({0, 16})
    ->Args({1, 16})
    ->Unit(benchmark::kMillisecond);

void ClusterRetransmitOverhead(benchmark::State& state) {
  // Cost of masking 20% seeded loss with ack+retransmit on the 16-node run.
  const double loss = state.range(0) == 0 ? 0.0 : 0.2;
  ClusterRun last;
  for (auto _ : state) {
    last = run_cluster(EngineKind::Dataflow, 16, loss);
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(loss > 0 ? "loss_0.2" : "lossless");
  state.counters["retransmitted"] = static_cast<double>(last.stats.retransmitted);
  state.counters["tuples_per_sec"] = last.tuples_per_sec;
}
BENCHMARK(ClusterRetransmitOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "net");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Instrumented workload: the 16-node path-vector comparison against the
  // simulator numbers that BENCH_dataflow.json tracks (smaller in smoke mode).
  const std::size_t nodes = harness.smoke() ? 8 : 16;
  const auto interp = run_cluster(EngineKind::Interpreter, nodes);
  const auto flow = run_cluster(EngineKind::Dataflow, nodes);
  const double sim_reference = run_simulator_reference(EngineKind::Dataflow, nodes);

  auto& m = harness.metrics();
  m.counter("net/bench/nodes").add(nodes);
  m.counter("net/bench/quiesced").add((interp.stats.quiesced ? 1 : 0) +
                                      (flow.stats.quiesced ? 1 : 0));
  m.counter("net/bench/interpreter/tuples_per_sec")
      .add(static_cast<std::uint64_t>(interp.tuples_per_sec));
  m.counter("net/bench/interpreter/bytes_per_sec")
      .add(static_cast<std::uint64_t>(interp.bytes_per_sec));
  m.counter("net/bench/dataflow/tuples_per_sec")
      .add(static_cast<std::uint64_t>(flow.tuples_per_sec));
  m.counter("net/bench/dataflow/bytes_per_sec")
      .add(static_cast<std::uint64_t>(flow.bytes_per_sec));
  m.counter("net/bench/messages").add(flow.stats.messages_sent);
  m.counter("net/bench/wire_bytes").add(flow.stats.transport.bytes_sent);
  // Cost-guided join ordering across the wire. The shipped path-vector plan
  // is already optimal (the one cheaper order the analyzer finds, on r4, is
  // unsafe to apply — ND0017 race), so this pins parity: same fixpoint work,
  // same message count, throughput within noise of the baseline.
  const auto ordered = run_cluster(EngineKind::Dataflow, nodes, 0.0, true);
  m.counter("net/bench/cost_order/tuples_per_sec")
      .add(static_cast<std::uint64_t>(ordered.tuples_per_sec));
  m.counter("net/bench/cost_order/messages_delta")
      .add(flow.stats.messages_sent > ordered.stats.messages_sent
               ? flow.stats.messages_sent - ordered.stats.messages_sent
               : ordered.stats.messages_sent - flow.stats.messages_sent);
  // Fixed-point ratio vs the virtual-clock executor: 100 = parity. The
  // cluster pays for real synchronization, so expect well below 100.
  m.counter("net/bench/vs_simulator_x100")
      .add(static_cast<std::uint64_t>(
          sim_reference > 0 ? flow.tuples_per_sec / sim_reference * 100 : 0));

  if (!harness.smoke()) {
    std::cout << "\n=== net cluster vs simulator (" << nodes
              << "-node path-vector) ===\n"
              << "cluster/interpreter: " << interp.stats.tuples_installed
              << " tuples in " << interp.seconds * 1000 << " ms ("
              << interp.tuples_per_sec << " tuples/s, " << interp.bytes_per_sec
              << " B/s on the wire)\n"
              << "cluster/dataflow:    " << flow.stats.tuples_installed
              << " tuples in " << flow.seconds * 1000 << " ms ("
              << flow.tuples_per_sec << " tuples/s, " << flow.bytes_per_sec
              << " B/s on the wire)\n"
              << "simulator/dataflow:  " << sim_reference
              << " tuples/s (virtual clock reference)\n"
              << "messages:            " << flow.stats.messages_sent << " data frames, "
              << flow.stats.transport.bytes_sent << " wire bytes\n"
              << "cost-order:          " << ordered.tuples_per_sec
              << " tuples/s, " << ordered.stats.messages_sent
              << " data frames (plan already optimal: expect parity)\n";
  }
  return harness.finish();
}
