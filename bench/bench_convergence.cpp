// E5 — paper §3.2.2 (reference [23]): "validates distributed executions of
// translated NDlog programs implementing a path-vector protocol with export
// and import policies within a local cluster environment, and observe
// delayed convergence in the presence of policy conflicts."
//
// Benchmarks distributed convergence (time-to-quiescence, messages, route
// flaps) of the policy path-vector program across topology sizes, with
// conflict-free vs Disagree-style conflicting local preferences.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/protocols.hpp"
#include "runtime/simulator.hpp"

namespace {

using namespace fvn;
using ndlog::Tuple;
using ndlog::Value;

std::vector<Tuple> policy_facts(std::size_t n, bool conflicts, std::uint64_t seed) {
  std::vector<Tuple> facts;
  for (std::size_t i = 0; i < n; ++i) {
    facts.emplace_back("node", std::vector<Value>{Value::addr(core::node_name(i))});
  }
  // Ring topology: quadratic (not exponential) simple-path count, so the
  // route-exploration cost stays proportional to the policy dynamics we are
  // measuring rather than to path enumeration.
  (void)seed;
  auto links = core::ring_topology(n);
  for (const auto& t : core::link_facts(links)) facts.push_back(t);
  // importPref per directed link; conflicts: each node strongly prefers the
  // "next" node's advertisements, building preference cycles.
  for (const auto& l : links) {
    std::int64_t lp = 100;
    if (conflicts) {
      const std::size_t src = std::stoul(l.src.substr(1));
      const std::size_t dst = std::stoul(l.dst.substr(1));
      if ((src + 1) % n == dst) lp = 200;  // prefer clockwise neighbor
    }
    facts.emplace_back("importPref", std::vector<Value>{Value::addr(l.src),
                                                        Value::addr(l.dst),
                                                        Value::integer(lp)});
  }
  return facts;
}

struct RunSummary {
  double converged_at = 0;
  double best_route_settled_at = 0;
  std::size_t messages = 0;
  std::size_t flaps = 0;
  bool quiesced = false;
};

RunSummary run_policy(std::size_t n, bool conflicts, std::uint64_t seed) {
  runtime::SimOptions options;
  options.seed = seed;
  runtime::Simulator sim(core::policy_path_vector_program(), options);
  sim.inject_all(policy_facts(n, conflicts, seed));
  auto stats = sim.run();
  RunSummary out;
  out.converged_at = stats.last_change_time;
  auto it = stats.last_change_by_predicate.find("bestRoute");
  out.best_route_settled_at = it == stats.last_change_by_predicate.end() ? 0 : it->second;
  out.messages = stats.messages_sent;
  out.flaps = stats.overwrites;
  out.quiesced = stats.quiesced;
  return out;
}

void PolicyConvergence(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool conflicts = state.range(1) != 0;
  RunSummary last;
  for (auto _ : state) {
    last = run_policy(n, conflicts, 17);
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(conflicts ? "conflicting" : "uniform");
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["converged_at_ms"] = last.converged_at * 1000;
  state.counters["bestRoute_settled_ms"] = last.best_route_settled_at * 1000;
  state.counters["messages"] = static_cast<double>(last.messages);
  state.counters["route_flaps"] = static_cast<double>(last.flaps);
}
BENCHMARK(PolicyConvergence)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({12, 0})
    ->Args({12, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Unit(benchmark::kMillisecond);

void PathVectorScaling(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  runtime::SimStats last;
  for (auto _ : state) {
    runtime::Simulator sim(core::path_vector_program(), {});
    sim.inject_all(core::link_facts(core::line_topology(n)));
    last = sim.run();
    benchmark::DoNotOptimize(last);
  }
  state.counters["messages"] = static_cast<double>(last.messages_sent);
  state.counters["converged_at_ms"] = last.last_change_time * 1000;
}
BENCHMARK(PathVectorScaling)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void LossyConvergence(benchmark::State& state) {
  // Path-vector under message loss: quiescence still reached (fewer routes).
  runtime::SimOptions options;
  options.loss_rate = static_cast<double>(state.range(0)) / 100.0;
  options.seed = 5;
  runtime::SimStats last;
  for (auto _ : state) {
    runtime::Simulator sim(core::path_vector_program(), options);
    sim.inject_all(core::link_facts(core::full_mesh_topology(6)));
    last = sim.run();
    benchmark::DoNotOptimize(last);
  }
  state.counters["dropped"] = static_cast<double>(last.messages_dropped);
  state.counters["quiesced"] = last.quiesced ? 1 : 0;
}
BENCHMARK(LossyConvergence)->Arg(0)->Arg(10)->Arg(30);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "convergence");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  if (!harness.smoke()) {
    std::cout << "\n=== E5: distributed policy path-vector (paper [23] validation) ===\n"
              << "paper:    translated programs run distributed; policy conflicts\n"
              << "          delay convergence\n"
              << "measured (ring topologies):\n"
              << "  nodes | prefs        | bestRoute settle(ms) | messages | route flaps\n";
    for (std::size_t n : {4u, 8u, 12u, 16u}) {
      for (bool conflicts : {false, true}) {
        auto r = run_policy(n, conflicts, 17);
        std::printf("  %5zu | %-12s | %20.1f | %8zu | %zu\n", n,
                    conflicts ? "conflicting" : "uniform", r.best_route_settled_at * 1000,
                    r.messages, r.flaps);
      }
    }
  }

  // Metrics JSON: one instrumented distributed run, so BENCH_*.json carries
  // the per-node message/queue-depth series across commits.
  {
    runtime::SimOptions options;
    options.seed = 17;
    options.metrics = &harness.metrics();
    runtime::Simulator sim(core::path_vector_program(), options);
    sim.inject_all(core::link_facts(core::line_topology(6)));
    sim.run();
  }
  return harness.finish();
}
