// E3 — paper §3.2.1: "example proofs of various properties [of] BGP, which
// includes the Disagree scenario [8,7] in the presence of policy conflicts."
//
// Benchmarks the SPP machinery: stable-state enumeration, model-checked
// oscillation detection, and SPVP activation dynamics for Disagree, Good
// Gadget, Bad Gadget and policy-free baselines.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "bgp/spp.hpp"
#include "bgp/spp_mc.hpp"

namespace {

using namespace fvn::bgp;

const SppInstance& instance(int which) {
  static const SppInstance gadgets[] = {disagree(), good_gadget(), bad_gadget(),
                                        shortest_hop_ring(5)};
  return gadgets[which];
}

void StableStateEnumeration(benchmark::State& state) {
  const auto& spp = instance(static_cast<int>(state.range(0)));
  std::size_t count = 0;
  for (auto _ : state) {
    auto states = stable_states(spp);
    count = states.size();
    benchmark::DoNotOptimize(states);
  }
  state.SetLabel(spp.name);
  state.counters["stable_states"] = static_cast<double>(count);
}
BENCHMARK(StableStateEnumeration)->DenseRange(0, 3);

void OscillationModelCheck(benchmark::State& state) {
  const auto& spp = instance(static_cast<int>(state.range(0)));
  bool cycle = false;
  std::size_t explored = 0;
  for (auto _ : state) {
    auto report = check_oscillation(spp);
    cycle = report.has_cycle;
    explored = report.states_explored;
  }
  state.SetLabel(spp.name);
  state.counters["oscillates"] = cycle ? 1 : 0;
  state.counters["states"] = static_cast<double>(explored);
}
BENCHMARK(OscillationModelCheck)->DenseRange(0, 3);

void SpvpSynchronous(benchmark::State& state) {
  const auto& spp = instance(static_cast<int>(state.range(0)));
  SpvpOptions options;
  options.schedule = SpvpOptions::Schedule::Synchronous;
  options.max_steps = 1000;
  SpvpResult last;
  for (auto _ : state) {
    last = run_spvp(spp, options);
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(spp.name);
  state.counters["converged"] = last.converged ? 1 : 0;
  state.counters["oscillated"] = last.oscillated ? 1 : 0;
  state.counters["flaps"] = static_cast<double>(last.route_flaps);
}
BENCHMARK(SpvpSynchronous)->DenseRange(0, 3);

void SpvpRandomScheduleConvergenceSteps(benchmark::State& state) {
  // Disagree under random activations: converges, but with varying delay —
  // the "delayed convergence in presence of policy conflicts" effect.
  SpvpOptions options;
  options.schedule = SpvpOptions::Schedule::Random;
  options.max_steps = 100000;
  std::size_t total_steps = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    options.seed = ++runs;
    auto result = run_spvp(disagree(), options);
    total_steps += result.steps;
    benchmark::DoNotOptimize(result);
  }
  state.counters["avg_steps"] =
      runs ? static_cast<double>(total_steps) / static_cast<double>(runs) : 0;
}
BENCHMARK(SpvpRandomScheduleConvergenceSteps);

void RingScaling(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto spp = shortest_hop_ring(n);
  SpvpOptions options;
  options.schedule = SpvpOptions::Schedule::RoundRobin;
  options.max_steps = 100000;
  SpvpResult last;
  for (auto _ : state) {
    last = run_spvp(spp, options);
    benchmark::DoNotOptimize(last);
  }
  state.counters["steps"] = static_cast<double>(last.steps);
}
BENCHMARK(RingScaling)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "bgp_disagree");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  if (!harness.smoke()) {
    std::cout << "\n=== E3: Disagree / policy conflicts (paper section 3.2.1) ===\n"
              << "paper:    Disagree diverges under policy conflicts; BGP may have\n"
              << "          multiple or no stable states\n"
              << "measured:\n";
    for (int i = 0; i < 3; ++i) {
      const auto& spp = instance(i);
      auto states = stable_states(spp);
      auto osc = check_oscillation(spp);
      std::cout << "  " << spp.name << ": " << states.size() << " stable state(s), "
                << (osc.has_cycle
                        ? "oscillation cycle length " + std::to_string(osc.cycle_length)
                        : "no oscillation")
              << "\n";
    }
  }

  // Metrics JSON: the Disagree gadget's stable-state/oscillation signature.
  {
    const auto& spp = instance(0);
    auto states = stable_states(spp);
    auto osc = check_oscillation(spp);
    auto& registry = harness.metrics();
    registry.counter("bgp/disagree/stable_states").add(states.size());
    registry.counter("bgp/disagree/oscillates").add(osc.has_cycle ? 1 : 0);
    registry.counter("bgp/disagree/cycle_length").add(osc.cycle_length);
  }
  return harness.finish();
}
