// LTL runtime-monitor overhead benchmark: the 16-node path-vector line run
// bare vs with SimOptions::tuple_events feeding an ltl::MonitorSet (the same
// lowering `fvn_cli sim --monitor` uses). The monitor steps once per tuple
// install/retract/expire, so this measures the full subset-construction cost
// on the hot path. Acceptance (ISSUE 8): overhead <= 10% on this workload,
// recorded as ltl/bench/overhead_pct_x100 in BENCH_ltl.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/protocols.hpp"
#include "ltl/formula.hpp"
#include "ltl/monitor.hpp"
#include "runtime/simulator.hpp"

namespace {

using namespace fvn;
using runtime::EngineKind;

// The monitored property set: a liveness witness on the far end of the line
// plus convergence — the same shape the shipped examples/ndlog/*.ltl specs use.
ltl::Spec monitor_spec(std::size_t nodes) {
  const std::string far = "n" + std::to_string(nodes - 1);
  const std::string text =
      "delivers: F bestPath(@n0, " + far + ", _, _).\n" +
      "converges: F G stable(bestPath).\n";
  return ltl::parse_spec(text, "bench_ltl.spec");
}

struct MonitoredRun {
  runtime::SimStats stats;
  double seconds = 0;
  std::size_t events = 0;
  bool satisfied = true;
};

MonitoredRun run_path_vector(std::size_t nodes, bool monitored) {
  runtime::SimOptions options;
  ltl::Spec spec;
  ltl::MonitorSet* live = nullptr;
  std::unique_ptr<ltl::MonitorSet> monitors;
  if (monitored) {
    spec = monitor_spec(nodes);
    monitors = std::make_unique<ltl::MonitorSet>(spec);
    live = monitors.get();
    options.tuple_events = [live](std::string_view kind, const std::string& node,
                                  const ndlog::Tuple& tuple, double now) {
      ltl::TupleEvent e;
      e.kind = kind == "install" ? ltl::TupleEvent::Kind::Install
               : kind == "retract" ? ltl::TupleEvent::Kind::Retract
                                   : ltl::TupleEvent::Kind::Expire;
      e.node = node;
      e.tuple = tuple;
      e.ts_us = static_cast<std::uint64_t>(now * 1e6);
      live->on_event(e);
    };
  }
  const auto t0 = std::chrono::steady_clock::now();
  runtime::Simulator sim(core::path_vector_program(), options);
  sim.inject_all(core::link_facts(core::line_topology(nodes)));
  MonitoredRun out;
  out.stats = sim.run();
  if (live) {
    const auto verdicts = live->finish();
    out.events = live->events();
    out.satisfied = std::all_of(verdicts.begin(), verdicts.end(),
                                [](const auto& v) { return v.satisfied; });
  }
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

// Best-of-N to damp scheduler noise: the overhead number gates a <=10% check,
// so we compare the fastest observed run of each variant.
MonitoredRun best_of(std::size_t nodes, bool monitored, int reps) {
  MonitoredRun best = run_path_vector(nodes, monitored);
  for (int i = 1; i < reps; ++i) {
    auto next = run_path_vector(nodes, monitored);
    if (next.seconds < best.seconds) best = next;
  }
  return best;
}

void PathVectorMonitored(benchmark::State& state) {
  const bool monitored = state.range(0) != 0;
  const auto nodes = static_cast<std::size_t>(state.range(1));
  MonitoredRun last;
  for (auto _ : state) {
    last = run_path_vector(nodes, monitored);
    benchmark::DoNotOptimize(last);
  }
  state.SetLabel(monitored ? "monitored" : "baseline");
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["tuples"] = static_cast<double>(last.stats.tuples_derived);
  state.counters["events"] = static_cast<double>(last.events);
}
BENCHMARK(PathVectorMonitored)
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({0, 16})
    ->Args({1, 16})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "ltl");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Instrumented workload: 16-node path-vector line, bare vs monitored (the
  // acceptance workload; smaller in smoke mode but the same comparison).
  const std::size_t nodes = harness.smoke() ? 8 : 16;
  const int reps = harness.smoke() ? 3 : 5;
  const auto baseline = best_of(nodes, false, reps);
  const auto monitored = best_of(nodes, true, reps);
  const double overhead_pct =
      baseline.seconds > 0
          ? (monitored.seconds - baseline.seconds) / baseline.seconds * 100.0
          : 0;

  auto& m = harness.metrics();
  m.counter("ltl/bench/nodes").add(nodes);
  m.counter("ltl/bench/baseline_us")
      .add(static_cast<std::uint64_t>(baseline.seconds * 1e6));
  m.counter("ltl/bench/monitored_us")
      .add(static_cast<std::uint64_t>(monitored.seconds * 1e6));
  m.counter("ltl/bench/monitor_events").add(monitored.events);
  // Fixed-point percent: 1000 = 10.00% (clamped at 0 for noise-negative runs).
  m.counter("ltl/bench/overhead_pct_x100")
      .add(static_cast<std::uint64_t>(std::max(0.0, overhead_pct) * 100));
  // The monitored run must actually verify something: all properties
  // satisfied and events observed, else the overhead number is meaningless.
  m.counter("ltl/bench/monitors_satisfied").add(monitored.satisfied ? 1 : 0);

  if (!harness.smoke()) {
    std::cout << "\n=== LTL monitor overhead (" << nodes
              << "-node path-vector) ===\n"
              << "baseline:  " << baseline.seconds * 1000 << " ms\n"
              << "monitored: " << monitored.seconds * 1000 << " ms ("
              << monitored.events << " tuple events)\n"
              << "overhead:  " << overhead_pct << "% (budget 10%)\n"
              << "verdicts:  " << (monitored.satisfied ? "all satisfied" : "VIOLATION")
              << "\n";
  }
  if (!monitored.satisfied || monitored.events == 0) {
    std::cerr << "bench_ltl: monitored run did not verify the spec\n";
    return 1;
  }
  return harness.finish();
}
