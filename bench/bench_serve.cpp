// fvn::serve benchmark: lookups/sec against the route-serving plane built
// from the 16-node path-vector fixpoint, idle and under convergence-style
// churn (the writer retracts/reinstalls routes and publishes epochs while
// the readers run). Acceptance (ISSUE 10):
//
//   - >= 1M lookups/sec with a single reader on the idle fixpoint
//   - churn throughput >= 0.5x idle (readers are wait-free; the writer
//     publishing epochs must not stall them)
//   - every reader-side checksum spot-check matches the published snapshot
//     (no torn reads), recorded as serve/bench/consistent
//   - snapshot publish latency recorded (p50/p99) and gated by check.sh
//
// Recorded in BENCH_serve.json (serve/bench/*), gated by scripts/check.sh.
// The box running this may be a single core: the churn writer sleeps ~50us
// between ops so readers actually get scheduled — the same pacing the CLI
// `serve --churn` mode uses.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/protocols.hpp"
#include "runtime/simulator.hpp"
#include "serve/plane.hpp"

namespace {

using namespace fvn;

constexpr std::size_t kNodes = 16;

struct Fixture {
  std::unique_ptr<serve::ServePlane> plane;  // ServePlane is not movable
  /// Live (node, tuple) pairs at the fixpoint — what the churn writer flips.
  std::vector<std::pair<std::string, ndlog::Tuple>> live;
  /// (interned node id, destination address bits) lookup targets.
  std::vector<std::pair<serve::Interner::Id, std::uint32_t>> targets;
};

/// Run the 16-node path-vector line to fixpoint with the serve feed attached
/// and keep the live bestPath tuples for churning.
Fixture build_fixture() {
  const auto catalog = ndlog::Catalog::from_program(core::path_vector_program());
  Fixture fx;
  fx.plane = std::make_unique<serve::ServePlane>(
      serve::ServeSpec::parse("bestPath:dst,nexthop,cost", catalog));
  serve::Feed feed(*fx.plane);

  std::map<std::string, std::pair<std::string, ndlog::Tuple>> live;
  runtime::SimOptions options;
  options.tuple_events = [&feed, &live](std::string_view kind,
                                        const std::string& node,
                                        const ndlog::Tuple& tuple, double now) {
    feed.on_event(kind, node, tuple, now);
    if (tuple.predicate() != "bestPath") return;
    const std::string id = node + "\x1f" + tuple.to_string();
    if (kind == "install") {
      live.emplace(id, std::make_pair(node, tuple));
    } else {
      live.erase(id);
    }
  };
  runtime::Simulator sim(core::path_vector_program(), options);
  sim.inject_all(core::link_facts(core::line_topology(kNodes)));
  sim.run();
  feed.finish();

  for (auto& [id, entry] : live) fx.live.push_back(entry);
  const serve::Snapshot& snap = fx.plane->current();
  for (std::size_t node = 0; node < snap.tables.size(); ++node) {
    if (snap.tables[node] == nullptr) continue;
    snap.tables[node]->for_each([&fx, node](serve::Key key, const serve::Row&) {
      fx.targets.emplace_back(static_cast<serve::Interner::Id>(node),
                              key.prefix);
    });
  }
  return fx;
}

struct Measured {
  std::uint64_t lookups = 0;
  double seconds = 0;
  std::uint64_t churn_ops = 0;
  bool consistent = true;
};

/// `readers` threads hammer the plane for ~`seconds`; when `churn`, this
/// thread concurrently flips live routes and publishes epochs.
Measured run_readers(Fixture& fx, int readers, double seconds, bool churn) {
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&fx, &stop, &torn, &total, r]() {
      auto reader = fx.plane->register_reader();
      std::uint64_t x = 0x9e3779b97f4a7c15ull ^ (static_cast<std::uint64_t>(r) + 1);
      std::uint64_t count = 0;
      std::uint64_t leases = 0;
      const std::size_t n = fx.targets.size();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto lease = reader.acquire();
        // Periodic full-content verification: the torn-read tripwire (cheap
        // enough at this cadence to not distort the throughput number).
        if (++leases % 512 == 0 &&
            serve::recompute_checksum(*lease) != lease->checksum) {
          torn.store(true);
          stop.store(true);
        }
        for (int i = 0; i < 64; ++i) {
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
          const auto& t = fx.targets[static_cast<std::size_t>(x % n)];
          benchmark::DoNotOptimize(reader.lookup(lease, t.first, t.second));
          ++count;
        }
      }
      total.fetch_add(count, std::memory_order_relaxed);
    });
  }

  Measured out;
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(seconds);
  if (churn) {
    std::size_t next = 0;
    while (std::chrono::steady_clock::now() < deadline &&
           !stop.load(std::memory_order_relaxed)) {
      const auto& [node, tuple] = fx.live[next % fx.live.size()];
      fx.plane->apply("retract", node, tuple);
      fx.plane->apply("install", node, tuple);
      ++next;
      ++out.churn_ops;
      if (next % 8 == 0) fx.plane->publish();
      // Yield the core(s) to the readers — this box may be single-core.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    fx.plane->publish(true);
  } else {
    while (std::chrono::steady_clock::now() < deadline &&
           !stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  stop.store(true);
  for (auto& t : pool) t.join();
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.lookups = total.load();
  out.consistent = !torn.load();
  return out;
}

void ServeLookup(benchmark::State& state) {
  static Fixture fx = build_fixture();
  auto reader = fx.plane->register_reader();
  std::uint64_t x = 0x2545f4914f6cdd1dull;
  const std::size_t n = fx.targets.size();
  const auto lease = reader.acquire();
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const auto& t = fx.targets[static_cast<std::size_t>(x % n)];
    benchmark::DoNotOptimize(reader.lookup(lease, t.first, t.second));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(ServeLookup);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "serve");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Instrumented workload (runs in smoke mode too — these are the gated
  // numbers): idle and churn lookup throughput at 1/2/4 readers over the
  // 16-node path-vector fixpoint.
  const double window = harness.smoke() ? 0.15 : 0.4;
  Fixture fx = build_fixture();

  auto& m = harness.metrics();
  m.counter("serve/bench/nodes").add(kNodes);
  m.counter("serve/bench/routes").add(fx.plane->current().routes);

  bool consistent = true;
  std::map<int, double> idle_rate;
  std::map<int, double> churn_rate;
  std::uint64_t churn_ops = 0;
  for (const int readers : {1, 2, 4}) {
    const auto idle = run_readers(fx, readers, window, /*churn=*/false);
    const auto churn = run_readers(fx, readers, window, /*churn=*/true);
    idle_rate[readers] = static_cast<double>(idle.lookups) / idle.seconds;
    churn_rate[readers] = static_cast<double>(churn.lookups) / churn.seconds;
    consistent = consistent && idle.consistent && churn.consistent;
    churn_ops += churn.churn_ops;
    const std::string tag = "_r" + std::to_string(readers);
    m.counter("serve/bench/idle_lookups_per_s" + tag)
        .add(static_cast<std::uint64_t>(idle_rate[readers]));
    m.counter("serve/bench/churn_lookups_per_s" + tag)
        .add(static_cast<std::uint64_t>(churn_rate[readers]));
  }

  const auto stats = fx.plane->stats();
  // Fixed-point percent: 100 = 1.00x (churn throughput relative to idle,
  // single reader — the wait-free-readers gate).
  const double ratio = idle_rate[1] > 0 ? churn_rate[1] / idle_rate[1] : 0;
  m.counter("serve/bench/churn_ratio_x100")
      .add(static_cast<std::uint64_t>(ratio * 100));
  m.counter("serve/bench/churn_ops").add(churn_ops);
  m.counter("serve/bench/epochs_published").add(stats.epochs_published);
  m.counter("serve/bench/snapshots_reclaimed").add(stats.snapshots_reclaimed);
  m.counter("serve/bench/publish_p50_us").add(stats.publish_p50_us);
  m.counter("serve/bench/publish_p99_us").add(stats.publish_p99_us);
  m.counter("serve/bench/consistent").add(consistent ? 1 : 0);

  if (!harness.smoke()) {
    std::cout << "\n=== serve lookups (" << kNodes
              << "-node path-vector fixpoint, " << fx.plane->current().routes
              << " routes) ===\n";
    for (const int readers : {1, 2, 4}) {
      std::cout << "readers=" << readers << ": idle "
                << idle_rate[readers] / 1e6 << " M/s, churn "
                << churn_rate[readers] / 1e6 << " M/s\n";
    }
    std::cout << "churn ratio (1 reader): " << ratio << "x (budget >= 0.5x)\n"
              << "publish latency: p50 " << stats.publish_p50_us << " us, p99 "
              << stats.publish_p99_us << " us\n"
              << "epochs: " << stats.epochs_published << " published, "
              << stats.snapshots_reclaimed << " reclaimed\n"
              << (consistent ? "consistent\n" : "TORN READS OBSERVED\n");
  }
  if (!consistent) {
    std::cerr << "bench_serve: a reader observed a torn snapshot\n";
    return 1;
  }
  return harness.finish();
}
