// E2 — paper §3.1 (after reference [22]): "the presence of count-to-infinity
// loops in the distance-vector protocol."
//
// Benchmarks the model checker's search for the count-to-infinity trace as a
// function of the infinity threshold (trace length grows linearly), the
// split-horizon contrast (invariant holds, full state space exhausted), and
// the centralized evaluator's divergence guard.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/protocols.hpp"
#include "mc/dv_model.hpp"
#include "ndlog/eval.hpp"

namespace {

using namespace fvn;

mc::DvConfig line_config(std::int64_t threshold, bool split_horizon) {
  mc::DvConfig config;
  config.node_count = 3;
  config.edges = {{0, 1, 1}, {1, 2, 1}};
  config.failed_link = {{0, 1}};
  config.infinity_threshold = threshold;
  config.split_horizon = split_horizon;
  return config;
}

void FindCountToInfinity(benchmark::State& state) {
  const auto threshold = static_cast<std::int64_t>(state.range(0));
  std::size_t trace_len = 0;
  std::size_t states = 0;
  for (auto _ : state) {
    auto result = mc::check_count_to_infinity(line_config(threshold, false));
    trace_len = result.counterexample.size();
    states = result.states_explored;
    benchmark::DoNotOptimize(result);
  }
  state.counters["threshold"] = static_cast<double>(threshold);
  state.counters["trace_len"] = static_cast<double>(trace_len);
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(FindCountToInfinity)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void SplitHorizonExhaustive(benchmark::State& state) {
  std::size_t states = 0;
  bool holds = false;
  for (auto _ : state) {
    auto result = mc::check_count_to_infinity(line_config(16, true));
    states = result.states_explored;
    holds = result.property_holds && result.exhausted;
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["invariant_holds"] = holds ? 1 : 0;
}
BENCHMARK(SplitHorizonExhaustive);

void RingCtiLargerLoops(benchmark::State& state) {
  // Split horizon does NOT save a 3-node loop: ring 0-1-2-3 with failure.
  const auto n = static_cast<std::size_t>(state.range(0));
  mc::DvConfig config;
  config.node_count = n;
  for (std::size_t i = 0; i < n; ++i) {
    config.edges.push_back({i, (i + 1) % n, 1});
  }
  config.failed_link = {{0, 1}};
  config.split_horizon = true;
  config.infinity_threshold = 16;
  bool violated = false;
  for (auto _ : state) {
    auto result = mc::check_count_to_infinity(config, 500000);
    violated = !result.property_holds;
    benchmark::DoNotOptimize(result);
  }
  state.counters["cti_found"] = violated ? 1 : 0;
}
BENCHMARK(RingCtiLargerLoops)->Arg(4)->Arg(5);

void CentralizedDivergenceGuard(benchmark::State& state) {
  ndlog::Evaluator eval;
  ndlog::EvalOptions options;
  options.max_iterations = 100;
  auto links = core::link_facts(core::ring_topology(3));
  std::size_t caught = 0;
  for (auto _ : state) {
    try {
      eval.run(core::distance_vector_program(), links, options);
    } catch (const ndlog::DivergenceError&) {
      ++caught;
    }
  }
  state.counters["diverged"] = caught > 0 ? 1 : 0;
}
BENCHMARK(CentralizedDivergenceGuard);

void BoundedDvConverges(benchmark::State& state) {
  ndlog::Evaluator eval;
  auto program = ndlog::parse_program(core::distance_vector_bounded_source(16), "dvb");
  auto links = core::link_facts(core::ring_topology(4));
  for (auto _ : state) {
    auto result = eval.run(program, links);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BoundedDvConverges);

}  // namespace

int main(int argc, char** argv) {
  fvn::bench::Harness harness(argc, argv, "count_to_infinity");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  if (!harness.smoke()) {
    std::cout << "\n=== E2: count-to-infinity (paper section 3.1 / [22]) ===\n"
              << "paper:    distance-vector HAS count-to-infinity loops; FVN detects them\n"
              << "measured:\n";
    for (std::int64_t threshold : {8, 16, 32}) {
      auto result = mc::check_count_to_infinity(line_config(threshold, false));
      std::cout << "  plain DV, bound " << threshold << ": "
                << (result.property_holds ? "no CTI (unexpected)" : "CTI trace found")
                << ", trace length " << result.counterexample.size() << "\n";
    }
    auto fixed = mc::check_count_to_infinity(line_config(16, true));
    std::cout << "  split horizon, bound 16: "
              << (fixed.property_holds ? "invariant holds (exhausted)" : "CTI (unexpected)")
              << ", " << fixed.states_explored << " states\n";
  }

  // Metrics JSON: one instrumented exploration (mc/states_expanded,
  // mc/transitions) per trajectory point.
  mc::check_count_to_infinity(line_config(8, false), 200000, &harness.metrics());
  return harness.finish();
}
