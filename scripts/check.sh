#!/usr/bin/env bash
# Repository health gate: tier-1 build + tests, the analyze-all sweep over
# every shipped example (ctest -L analyze), the ltl, parallel and serve
# suites, the same tests again under ASan/UBSan, the concurrent
# `net|ltl|parallel|serve` suites once more under TSan (build-tsan),
# perf-smoke gates (bench_net cluster:simulator floor, bench_ltl
# monitor-overhead ceiling, bench_parallel workers=1 overhead ceiling,
# bench_serve lookup floor + churn ratio + publish-latency ceiling), and
# (when available) clang-tidy over src/
# with the checks pinned in .clang-tidy — the tidy stage is gating
# (WarningsAsErrors: '*'), so any finding fails the script.
#
# Usage: scripts/check.sh [--no-sanitize] [--no-tidy]
#
# Exit nonzero on the first failing stage. clang-tidy is optional tooling:
# when the binary is missing the stage is skipped with a notice, because the
# build container ships only the base C++ toolchain.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"

run_sanitize=1
run_tidy=1
for arg in "$@"; do
  case "$arg" in
    --no-sanitize) run_sanitize=0 ;;
    --no-tidy) run_tidy=0 ;;
    *)
      echo "usage: scripts/check.sh [--no-sanitize] [--no-tidy]" >&2
      exit 2
      ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 4)

echo "== check: tier-1 build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

# analyze-all: lint + analyze (--json, --cost) over every shipped example,
# exercised through the fvn_cli binary by test_analyze_all. A fast, focused
# re-run so a diagnostics regression names this stage rather than hiding in
# the full suite above.
echo "== check: analyze-all sweep (ctest -L analyze) =="
ctest --test-dir build --output-on-failure -L analyze

# ltl: temporal-logic unit suite plus the mc ↔ runtime-monitor
# cross-validation matrix (every example × its .ltl spec × both engines ×
# inproc/udp). Focused re-run for the same reason as analyze-all.
echo "== check: ltl suite (ctest -L ltl) =="
ctest --test-dir build --output-on-failure -L ltl

# parallel: the shard-parallel certificate (fvn::ndlog::parallel units +
# golden signatures) and the serial-vs-multi-worker differential matrix
# (every example × workers ∈ {1,2,4} × both engines, simulator and cluster,
# plus fuzzed monotone programs). Fixpoints must be bit-identical to serial.
echo "== check: parallel suite (ctest -L parallel) =="
ctest --test-dir build --output-on-failure -L parallel

# serve: the LPM mtrie differential fuzz vs the linear oracle, the epoch
# snapshot publisher (reclamation + torn-read tripwire under churn), and the
# feed-projection == fixpoint cross-checks on both runtimes.
echo "== check: serve suite (ctest -L serve) =="
ctest --test-dir build --output-on-failure -L serve

if [ "$run_tidy" -eq 1 ]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== check: clang-tidy over src/ (gating: warnings are errors) =="
    # The tier-1 build above refreshed compile_commands.json. .clang-tidy
    # sets WarningsAsErrors: '*', so clang-tidy exits nonzero on any finding
    # and set -e fails the script here.
    find src -name '*.cpp' -print0 |
      xargs -0 -P "$jobs" -n 4 clang-tidy -p build --quiet
  else
    echo "== check: clang-tidy not installed, skipping lint stage =="
  fi
fi

if [ "$run_sanitize" -eq 1 ]; then
  echo "== check: ASan/UBSan build + ctest =="
  cmake -B build-san -S . -DFVN_SANITIZE="address;undefined" >/dev/null
  cmake --build build-san -j "$jobs"
  ctest --test-dir build-san --output-on-failure -j "$jobs"

  # The fvn::net cluster and the shard-parallel worker pool are the genuinely
  # concurrent subsystems; their labelled tests run again under TSan, which
  # ASan cannot subsume. The ltl cross-validation suite joins them because
  # its monitors consume the threaded cluster's tuple-event stream, and the
  # parallel differential matrix drives the multi-worker round loop directly.
  # Separate tree: TSan is incompatible with ASan in one binary.
  # test_serve joins the TSan matrix: its churn test races wait-free readers
  # against epoch publication and deferred reclamation.
  echo "== check: TSan build + ctest -L 'net|ltl|parallel|serve' =="
  cmake -B build-tsan -S . -DFVN_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$jobs" --target test_net_wire test_net_cluster \
    test_net_stats test_ltl test_ltl_crossval test_ndlog_parallel \
    test_parallel_crossval test_serve
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L 'net|ltl|parallel|serve'
fi

# Perf smoke: the 8-node path-vector cluster must stay within shouting
# distance of the discrete-event simulator. vs_simulator_x100 is the cluster:
# simulator throughput ratio (100 = parity); the batched-channel work keeps
# it in the 40-60 band on a single-core container, so 25 is a regression
# floor (the unbatched baseline measured 13), not a target.
echo "== check: perf smoke (bench_net vs_simulator_x100 floor) =="
./build/bench/bench_net --fvn-smoke --benchmark_filter='^$' >/dev/null
python3 - <<'EOF'
import json, sys
floor = 25
got = json.load(open("BENCH_net.json"))["metrics"]["counters"]["net/bench/vs_simulator_x100"]
print(f"vs_simulator_x100 = {got} (floor {floor})")
sys.exit(0 if got >= floor else 1)
EOF

# LTL monitor overhead: the online MonitorSet attached to the path-vector
# simulation must cost <= 10% wall time over the bare run (ISSUE 8
# acceptance; measured ~2% — 10 is the hard ceiling, not the expectation).
echo "== check: perf smoke (bench_ltl monitor overhead ceiling) =="
./build/bench/bench_ltl --fvn-smoke --benchmark_filter='^$' >/dev/null
python3 - <<'EOF'
import json, sys
ceiling = 1000  # overhead_pct_x100: 1000 = 10.00%
got = json.load(open("BENCH_ltl.json"))["metrics"]["counters"]["ltl/bench/overhead_pct_x100"]
print(f"overhead_pct_x100 = {got} (ceiling {ceiling})")
sys.exit(0 if got <= ceiling else 1)
EOF

# Shard-parallel overhead: the workers=1 run pays for the full round
# machinery (batching, shard routing, deterministic merge) with no extra
# threads, so its gap to serial is pure bookkeeping — <= 10% on the
# path-vector workload (ISSUE 9 acceptance; the gated aggregate pass makes
# it measure *faster* than serial in practice, so the clamp usually reads 0).
# derivations_match doubles as a correctness tripwire: the parallel runs
# must replay the serial derivation count exactly.
echo "== check: perf smoke (bench_parallel workers=1 overhead ceiling) =="
./build/bench/bench_parallel --fvn-smoke --benchmark_filter='^$' >/dev/null
python3 - <<'EOF'
import json, sys
ceiling = 1000  # overhead_pct_x100: 1000 = 10.00%
counters = json.load(open("BENCH_parallel.json"))["metrics"]["counters"]
got = counters["parallel/bench/overhead_pct_x100"]
match = counters["parallel/bench/derivations_match"]
print(f"overhead_pct_x100 = {got} (ceiling {ceiling}), derivations_match = {match}")
sys.exit(0 if got <= ceiling and match == 1 else 1)
EOF

# Serve plane: a single reader on the idle 16-node path-vector fixpoint must
# clear 1M lookups/sec (measures ~11M); under churn (writer retracting/
# reinstalling routes and publishing epochs) throughput must hold >= 0.5x
# idle — the wait-free-readers guarantee made into a number. consistent is
# the torn-read tripwire (readers recompute the published checksum), and the
# publish p99 ceiling keeps snapshot freezes from growing a stall.
echo "== check: perf smoke (bench_serve lookup floor + churn ratio) =="
./build/bench/bench_serve --fvn-smoke --benchmark_filter='^$' >/dev/null
python3 - <<'EOF'
import json, sys
floor = 1_000_000       # idle single-reader lookups/sec
ratio_floor = 50        # churn_ratio_x100: 50 = 0.5x idle
p99_ceiling = 20_000    # publish latency p99 in us
c = json.load(open("BENCH_serve.json"))["metrics"]["counters"]
idle = c["serve/bench/idle_lookups_per_s_r1"]
ratio = c["serve/bench/churn_ratio_x100"]
p99 = c["serve/bench/publish_p99_us"]
consistent = c["serve/bench/consistent"]
print(f"idle_r1 = {idle} (floor {floor}), churn_ratio_x100 = {ratio} "
      f"(floor {ratio_floor}), publish_p99_us = {p99} (ceiling {p99_ceiling}), "
      f"consistent = {consistent}")
sys.exit(0 if idle >= floor and ratio >= ratio_floor
              and p99 <= p99_ceiling and consistent == 1 else 1)
EOF

echo "== check: all stages passed =="
