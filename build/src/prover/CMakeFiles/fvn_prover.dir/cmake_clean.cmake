file(REMOVE_RECURSE
  "CMakeFiles/fvn_prover.dir/linear.cpp.o"
  "CMakeFiles/fvn_prover.dir/linear.cpp.o.d"
  "CMakeFiles/fvn_prover.dir/prover.cpp.o"
  "CMakeFiles/fvn_prover.dir/prover.cpp.o.d"
  "CMakeFiles/fvn_prover.dir/rewrite.cpp.o"
  "CMakeFiles/fvn_prover.dir/rewrite.cpp.o.d"
  "libfvn_prover.a"
  "libfvn_prover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvn_prover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
