file(REMOVE_RECURSE
  "libfvn_prover.a"
)
