
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prover/linear.cpp" "src/prover/CMakeFiles/fvn_prover.dir/linear.cpp.o" "gcc" "src/prover/CMakeFiles/fvn_prover.dir/linear.cpp.o.d"
  "/root/repo/src/prover/prover.cpp" "src/prover/CMakeFiles/fvn_prover.dir/prover.cpp.o" "gcc" "src/prover/CMakeFiles/fvn_prover.dir/prover.cpp.o.d"
  "/root/repo/src/prover/rewrite.cpp" "src/prover/CMakeFiles/fvn_prover.dir/rewrite.cpp.o" "gcc" "src/prover/CMakeFiles/fvn_prover.dir/rewrite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/fvn_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/ndlog/CMakeFiles/fvn_ndlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
