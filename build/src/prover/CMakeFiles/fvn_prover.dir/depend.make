# Empty dependencies file for fvn_prover.
# This may be replaced when dependencies are built.
