file(REMOVE_RECURSE
  "CMakeFiles/fvn_mc.dir/dv_model.cpp.o"
  "CMakeFiles/fvn_mc.dir/dv_model.cpp.o.d"
  "CMakeFiles/fvn_mc.dir/ndlog_ts.cpp.o"
  "CMakeFiles/fvn_mc.dir/ndlog_ts.cpp.o.d"
  "libfvn_mc.a"
  "libfvn_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvn_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
