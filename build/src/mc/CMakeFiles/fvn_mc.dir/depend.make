# Empty dependencies file for fvn_mc.
# This may be replaced when dependencies are built.
