file(REMOVE_RECURSE
  "libfvn_mc.a"
)
