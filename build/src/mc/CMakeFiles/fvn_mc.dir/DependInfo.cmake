
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/dv_model.cpp" "src/mc/CMakeFiles/fvn_mc.dir/dv_model.cpp.o" "gcc" "src/mc/CMakeFiles/fvn_mc.dir/dv_model.cpp.o.d"
  "/root/repo/src/mc/ndlog_ts.cpp" "src/mc/CMakeFiles/fvn_mc.dir/ndlog_ts.cpp.o" "gcc" "src/mc/CMakeFiles/fvn_mc.dir/ndlog_ts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ndlog/CMakeFiles/fvn_ndlog.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fvn_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
