
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/finite_model.cpp" "src/logic/CMakeFiles/fvn_logic.dir/finite_model.cpp.o" "gcc" "src/logic/CMakeFiles/fvn_logic.dir/finite_model.cpp.o.d"
  "/root/repo/src/logic/formula.cpp" "src/logic/CMakeFiles/fvn_logic.dir/formula.cpp.o" "gcc" "src/logic/CMakeFiles/fvn_logic.dir/formula.cpp.o.d"
  "/root/repo/src/logic/pvs_emit.cpp" "src/logic/CMakeFiles/fvn_logic.dir/pvs_emit.cpp.o" "gcc" "src/logic/CMakeFiles/fvn_logic.dir/pvs_emit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ndlog/CMakeFiles/fvn_ndlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
