file(REMOVE_RECURSE
  "CMakeFiles/fvn_logic.dir/finite_model.cpp.o"
  "CMakeFiles/fvn_logic.dir/finite_model.cpp.o.d"
  "CMakeFiles/fvn_logic.dir/formula.cpp.o"
  "CMakeFiles/fvn_logic.dir/formula.cpp.o.d"
  "CMakeFiles/fvn_logic.dir/pvs_emit.cpp.o"
  "CMakeFiles/fvn_logic.dir/pvs_emit.cpp.o.d"
  "libfvn_logic.a"
  "libfvn_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvn_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
