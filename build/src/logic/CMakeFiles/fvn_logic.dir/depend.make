# Empty dependencies file for fvn_logic.
# This may be replaced when dependencies are built.
