file(REMOVE_RECURSE
  "libfvn_logic.a"
)
