# Empty dependencies file for fvn_algebra.
# This may be replaced when dependencies are built.
