file(REMOVE_RECURSE
  "libfvn_algebra.a"
)
