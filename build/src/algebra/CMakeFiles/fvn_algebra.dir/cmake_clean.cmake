file(REMOVE_RECURSE
  "CMakeFiles/fvn_algebra.dir/routing_algebra.cpp.o"
  "CMakeFiles/fvn_algebra.dir/routing_algebra.cpp.o.d"
  "CMakeFiles/fvn_algebra.dir/solver.cpp.o"
  "CMakeFiles/fvn_algebra.dir/solver.cpp.o.d"
  "libfvn_algebra.a"
  "libfvn_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvn_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
