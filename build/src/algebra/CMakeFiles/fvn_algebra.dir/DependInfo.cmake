
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/routing_algebra.cpp" "src/algebra/CMakeFiles/fvn_algebra.dir/routing_algebra.cpp.o" "gcc" "src/algebra/CMakeFiles/fvn_algebra.dir/routing_algebra.cpp.o.d"
  "/root/repo/src/algebra/solver.cpp" "src/algebra/CMakeFiles/fvn_algebra.dir/solver.cpp.o" "gcc" "src/algebra/CMakeFiles/fvn_algebra.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ndlog/CMakeFiles/fvn_ndlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
