# Empty compiler generated dependencies file for fvn_ndlog.
# This may be replaced when dependencies are built.
