file(REMOVE_RECURSE
  "libfvn_ndlog.a"
)
