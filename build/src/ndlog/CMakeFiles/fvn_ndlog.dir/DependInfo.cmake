
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ndlog/analysis.cpp" "src/ndlog/CMakeFiles/fvn_ndlog.dir/analysis.cpp.o" "gcc" "src/ndlog/CMakeFiles/fvn_ndlog.dir/analysis.cpp.o.d"
  "/root/repo/src/ndlog/ast.cpp" "src/ndlog/CMakeFiles/fvn_ndlog.dir/ast.cpp.o" "gcc" "src/ndlog/CMakeFiles/fvn_ndlog.dir/ast.cpp.o.d"
  "/root/repo/src/ndlog/builtins.cpp" "src/ndlog/CMakeFiles/fvn_ndlog.dir/builtins.cpp.o" "gcc" "src/ndlog/CMakeFiles/fvn_ndlog.dir/builtins.cpp.o.d"
  "/root/repo/src/ndlog/catalog.cpp" "src/ndlog/CMakeFiles/fvn_ndlog.dir/catalog.cpp.o" "gcc" "src/ndlog/CMakeFiles/fvn_ndlog.dir/catalog.cpp.o.d"
  "/root/repo/src/ndlog/database.cpp" "src/ndlog/CMakeFiles/fvn_ndlog.dir/database.cpp.o" "gcc" "src/ndlog/CMakeFiles/fvn_ndlog.dir/database.cpp.o.d"
  "/root/repo/src/ndlog/eval.cpp" "src/ndlog/CMakeFiles/fvn_ndlog.dir/eval.cpp.o" "gcc" "src/ndlog/CMakeFiles/fvn_ndlog.dir/eval.cpp.o.d"
  "/root/repo/src/ndlog/parser.cpp" "src/ndlog/CMakeFiles/fvn_ndlog.dir/parser.cpp.o" "gcc" "src/ndlog/CMakeFiles/fvn_ndlog.dir/parser.cpp.o.d"
  "/root/repo/src/ndlog/provenance.cpp" "src/ndlog/CMakeFiles/fvn_ndlog.dir/provenance.cpp.o" "gcc" "src/ndlog/CMakeFiles/fvn_ndlog.dir/provenance.cpp.o.d"
  "/root/repo/src/ndlog/query.cpp" "src/ndlog/CMakeFiles/fvn_ndlog.dir/query.cpp.o" "gcc" "src/ndlog/CMakeFiles/fvn_ndlog.dir/query.cpp.o.d"
  "/root/repo/src/ndlog/tuple.cpp" "src/ndlog/CMakeFiles/fvn_ndlog.dir/tuple.cpp.o" "gcc" "src/ndlog/CMakeFiles/fvn_ndlog.dir/tuple.cpp.o.d"
  "/root/repo/src/ndlog/value.cpp" "src/ndlog/CMakeFiles/fvn_ndlog.dir/value.cpp.o" "gcc" "src/ndlog/CMakeFiles/fvn_ndlog.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
