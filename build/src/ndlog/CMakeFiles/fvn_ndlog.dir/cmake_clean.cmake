file(REMOVE_RECURSE
  "CMakeFiles/fvn_ndlog.dir/analysis.cpp.o"
  "CMakeFiles/fvn_ndlog.dir/analysis.cpp.o.d"
  "CMakeFiles/fvn_ndlog.dir/ast.cpp.o"
  "CMakeFiles/fvn_ndlog.dir/ast.cpp.o.d"
  "CMakeFiles/fvn_ndlog.dir/builtins.cpp.o"
  "CMakeFiles/fvn_ndlog.dir/builtins.cpp.o.d"
  "CMakeFiles/fvn_ndlog.dir/catalog.cpp.o"
  "CMakeFiles/fvn_ndlog.dir/catalog.cpp.o.d"
  "CMakeFiles/fvn_ndlog.dir/database.cpp.o"
  "CMakeFiles/fvn_ndlog.dir/database.cpp.o.d"
  "CMakeFiles/fvn_ndlog.dir/eval.cpp.o"
  "CMakeFiles/fvn_ndlog.dir/eval.cpp.o.d"
  "CMakeFiles/fvn_ndlog.dir/parser.cpp.o"
  "CMakeFiles/fvn_ndlog.dir/parser.cpp.o.d"
  "CMakeFiles/fvn_ndlog.dir/provenance.cpp.o"
  "CMakeFiles/fvn_ndlog.dir/provenance.cpp.o.d"
  "CMakeFiles/fvn_ndlog.dir/query.cpp.o"
  "CMakeFiles/fvn_ndlog.dir/query.cpp.o.d"
  "CMakeFiles/fvn_ndlog.dir/tuple.cpp.o"
  "CMakeFiles/fvn_ndlog.dir/tuple.cpp.o.d"
  "CMakeFiles/fvn_ndlog.dir/value.cpp.o"
  "CMakeFiles/fvn_ndlog.dir/value.cpp.o.d"
  "libfvn_ndlog.a"
  "libfvn_ndlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvn_ndlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
