file(REMOVE_RECURSE
  "libfvn_core.a"
)
