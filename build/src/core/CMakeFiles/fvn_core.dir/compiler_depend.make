# Empty compiler generated dependencies file for fvn_core.
# This may be replaced when dependencies are built.
