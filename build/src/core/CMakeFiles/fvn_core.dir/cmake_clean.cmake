file(REMOVE_RECURSE
  "CMakeFiles/fvn_core.dir/fvn.cpp.o"
  "CMakeFiles/fvn_core.dir/fvn.cpp.o.d"
  "CMakeFiles/fvn_core.dir/protocols.cpp.o"
  "CMakeFiles/fvn_core.dir/protocols.cpp.o.d"
  "libfvn_core.a"
  "libfvn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
