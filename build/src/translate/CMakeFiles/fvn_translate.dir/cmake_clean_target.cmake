file(REMOVE_RECURSE
  "libfvn_translate.a"
)
