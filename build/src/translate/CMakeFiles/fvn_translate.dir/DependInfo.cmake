
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/translate/components.cpp" "src/translate/CMakeFiles/fvn_translate.dir/components.cpp.o" "gcc" "src/translate/CMakeFiles/fvn_translate.dir/components.cpp.o.d"
  "/root/repo/src/translate/linear_view.cpp" "src/translate/CMakeFiles/fvn_translate.dir/linear_view.cpp.o" "gcc" "src/translate/CMakeFiles/fvn_translate.dir/linear_view.cpp.o.d"
  "/root/repo/src/translate/ndlog_to_logic.cpp" "src/translate/CMakeFiles/fvn_translate.dir/ndlog_to_logic.cpp.o" "gcc" "src/translate/CMakeFiles/fvn_translate.dir/ndlog_to_logic.cpp.o.d"
  "/root/repo/src/translate/softstate.cpp" "src/translate/CMakeFiles/fvn_translate.dir/softstate.cpp.o" "gcc" "src/translate/CMakeFiles/fvn_translate.dir/softstate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/fvn_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/ndlog/CMakeFiles/fvn_ndlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
