# Empty compiler generated dependencies file for fvn_translate.
# This may be replaced when dependencies are built.
