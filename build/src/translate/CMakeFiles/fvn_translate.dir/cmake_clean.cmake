file(REMOVE_RECURSE
  "CMakeFiles/fvn_translate.dir/components.cpp.o"
  "CMakeFiles/fvn_translate.dir/components.cpp.o.d"
  "CMakeFiles/fvn_translate.dir/linear_view.cpp.o"
  "CMakeFiles/fvn_translate.dir/linear_view.cpp.o.d"
  "CMakeFiles/fvn_translate.dir/ndlog_to_logic.cpp.o"
  "CMakeFiles/fvn_translate.dir/ndlog_to_logic.cpp.o.d"
  "CMakeFiles/fvn_translate.dir/softstate.cpp.o"
  "CMakeFiles/fvn_translate.dir/softstate.cpp.o.d"
  "libfvn_translate.a"
  "libfvn_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvn_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
