# Empty dependencies file for fvn_runtime.
# This may be replaced when dependencies are built.
