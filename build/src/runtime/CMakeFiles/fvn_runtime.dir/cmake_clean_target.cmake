file(REMOVE_RECURSE
  "libfvn_runtime.a"
)
