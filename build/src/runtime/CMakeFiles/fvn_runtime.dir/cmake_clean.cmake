file(REMOVE_RECURSE
  "CMakeFiles/fvn_runtime.dir/localize.cpp.o"
  "CMakeFiles/fvn_runtime.dir/localize.cpp.o.d"
  "CMakeFiles/fvn_runtime.dir/simulator.cpp.o"
  "CMakeFiles/fvn_runtime.dir/simulator.cpp.o.d"
  "libfvn_runtime.a"
  "libfvn_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvn_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
