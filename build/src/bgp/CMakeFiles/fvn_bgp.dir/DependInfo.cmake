
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/component_model.cpp" "src/bgp/CMakeFiles/fvn_bgp.dir/component_model.cpp.o" "gcc" "src/bgp/CMakeFiles/fvn_bgp.dir/component_model.cpp.o.d"
  "/root/repo/src/bgp/dispute_wheel.cpp" "src/bgp/CMakeFiles/fvn_bgp.dir/dispute_wheel.cpp.o" "gcc" "src/bgp/CMakeFiles/fvn_bgp.dir/dispute_wheel.cpp.o.d"
  "/root/repo/src/bgp/spp.cpp" "src/bgp/CMakeFiles/fvn_bgp.dir/spp.cpp.o" "gcc" "src/bgp/CMakeFiles/fvn_bgp.dir/spp.cpp.o.d"
  "/root/repo/src/bgp/spp_mc.cpp" "src/bgp/CMakeFiles/fvn_bgp.dir/spp_mc.cpp.o" "gcc" "src/bgp/CMakeFiles/fvn_bgp.dir/spp_mc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/translate/CMakeFiles/fvn_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/fvn_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/fvn_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fvn_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ndlog/CMakeFiles/fvn_ndlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
