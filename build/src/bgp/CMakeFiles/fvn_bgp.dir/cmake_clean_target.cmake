file(REMOVE_RECURSE
  "libfvn_bgp.a"
)
