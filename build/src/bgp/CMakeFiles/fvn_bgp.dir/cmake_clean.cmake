file(REMOVE_RECURSE
  "CMakeFiles/fvn_bgp.dir/component_model.cpp.o"
  "CMakeFiles/fvn_bgp.dir/component_model.cpp.o.d"
  "CMakeFiles/fvn_bgp.dir/dispute_wheel.cpp.o"
  "CMakeFiles/fvn_bgp.dir/dispute_wheel.cpp.o.d"
  "CMakeFiles/fvn_bgp.dir/spp.cpp.o"
  "CMakeFiles/fvn_bgp.dir/spp.cpp.o.d"
  "CMakeFiles/fvn_bgp.dir/spp_mc.cpp.o"
  "CMakeFiles/fvn_bgp.dir/spp_mc.cpp.o.d"
  "libfvn_bgp.a"
  "libfvn_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvn_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
