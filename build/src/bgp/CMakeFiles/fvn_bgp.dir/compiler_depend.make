# Empty compiler generated dependencies file for fvn_bgp.
# This may be replaced when dependencies are built.
