# Empty dependencies file for bench_ndlog_eval.
# This may be replaced when dependencies are built.
