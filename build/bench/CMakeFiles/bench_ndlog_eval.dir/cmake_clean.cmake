file(REMOVE_RECURSE
  "CMakeFiles/bench_ndlog_eval.dir/bench_ndlog_eval.cpp.o"
  "CMakeFiles/bench_ndlog_eval.dir/bench_ndlog_eval.cpp.o.d"
  "bench_ndlog_eval"
  "bench_ndlog_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ndlog_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
