file(REMOVE_RECURSE
  "CMakeFiles/bench_prover_optimality.dir/bench_prover_optimality.cpp.o"
  "CMakeFiles/bench_prover_optimality.dir/bench_prover_optimality.cpp.o.d"
  "bench_prover_optimality"
  "bench_prover_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prover_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
