# Empty dependencies file for bench_prover_optimality.
# This may be replaced when dependencies are built.
