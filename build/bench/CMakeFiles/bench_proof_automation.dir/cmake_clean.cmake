file(REMOVE_RECURSE
  "CMakeFiles/bench_proof_automation.dir/bench_proof_automation.cpp.o"
  "CMakeFiles/bench_proof_automation.dir/bench_proof_automation.cpp.o.d"
  "bench_proof_automation"
  "bench_proof_automation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proof_automation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
