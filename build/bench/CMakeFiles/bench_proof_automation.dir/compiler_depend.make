# Empty compiler generated dependencies file for bench_proof_automation.
# This may be replaced when dependencies are built.
