
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_proof_automation.cpp" "bench/CMakeFiles/bench_proof_automation.dir/bench_proof_automation.cpp.o" "gcc" "bench/CMakeFiles/bench_proof_automation.dir/bench_proof_automation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fvn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/fvn_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/prover/CMakeFiles/fvn_prover.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/fvn_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/fvn_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/fvn_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/fvn_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fvn_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ndlog/CMakeFiles/fvn_ndlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
