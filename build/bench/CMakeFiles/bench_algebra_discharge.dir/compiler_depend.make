# Empty compiler generated dependencies file for bench_algebra_discharge.
# This may be replaced when dependencies are built.
