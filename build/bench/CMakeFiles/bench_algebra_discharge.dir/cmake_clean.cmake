file(REMOVE_RECURSE
  "CMakeFiles/bench_algebra_discharge.dir/bench_algebra_discharge.cpp.o"
  "CMakeFiles/bench_algebra_discharge.dir/bench_algebra_discharge.cpp.o.d"
  "bench_algebra_discharge"
  "bench_algebra_discharge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algebra_discharge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
