file(REMOVE_RECURSE
  "CMakeFiles/bench_count_to_infinity.dir/bench_count_to_infinity.cpp.o"
  "CMakeFiles/bench_count_to_infinity.dir/bench_count_to_infinity.cpp.o.d"
  "bench_count_to_infinity"
  "bench_count_to_infinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_count_to_infinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
