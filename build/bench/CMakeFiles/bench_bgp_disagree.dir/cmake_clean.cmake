file(REMOVE_RECURSE
  "CMakeFiles/bench_bgp_disagree.dir/bench_bgp_disagree.cpp.o"
  "CMakeFiles/bench_bgp_disagree.dir/bench_bgp_disagree.cpp.o.d"
  "bench_bgp_disagree"
  "bench_bgp_disagree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bgp_disagree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
