# Empty compiler generated dependencies file for bench_bgp_disagree.
# This may be replaced when dependencies are built.
