# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_ndlog_eval[1]_include.cmake")
include("/root/repo/build/tests/test_prover[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_algebra[1]_include.cmake")
include("/root/repo/build/tests/test_bgp[1]_include.cmake")
include("/root/repo/build/tests/test_mc[1]_include.cmake")
include("/root/repo/build/tests/test_translate[1]_include.cmake")
include("/root/repo/build/tests/test_fvn[1]_include.cmake")
include("/root/repo/build/tests/test_ndlog_value[1]_include.cmake")
include("/root/repo/build/tests/test_ndlog_parser[1]_include.cmake")
include("/root/repo/build/tests/test_ndlog_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_prover_parts[1]_include.cmake")
include("/root/repo/build/tests/test_provenance[1]_include.cmake")
include("/root/repo/build/tests/test_dispute_wheel[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_cti[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
