file(REMOVE_RECURSE
  "CMakeFiles/test_prover.dir/test_prover.cpp.o"
  "CMakeFiles/test_prover.dir/test_prover.cpp.o.d"
  "test_prover"
  "test_prover.pdb"
  "test_prover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
