# Empty compiler generated dependencies file for test_ndlog_value.
# This may be replaced when dependencies are built.
