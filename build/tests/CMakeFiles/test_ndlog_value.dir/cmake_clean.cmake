file(REMOVE_RECURSE
  "CMakeFiles/test_ndlog_value.dir/test_ndlog_value.cpp.o"
  "CMakeFiles/test_ndlog_value.dir/test_ndlog_value.cpp.o.d"
  "test_ndlog_value"
  "test_ndlog_value.pdb"
  "test_ndlog_value[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ndlog_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
