# Empty dependencies file for test_ndlog_eval.
# This may be replaced when dependencies are built.
