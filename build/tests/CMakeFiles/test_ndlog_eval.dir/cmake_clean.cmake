file(REMOVE_RECURSE
  "CMakeFiles/test_ndlog_eval.dir/test_ndlog_eval.cpp.o"
  "CMakeFiles/test_ndlog_eval.dir/test_ndlog_eval.cpp.o.d"
  "test_ndlog_eval"
  "test_ndlog_eval.pdb"
  "test_ndlog_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ndlog_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
