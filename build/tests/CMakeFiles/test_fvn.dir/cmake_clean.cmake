file(REMOVE_RECURSE
  "CMakeFiles/test_fvn.dir/test_fvn.cpp.o"
  "CMakeFiles/test_fvn.dir/test_fvn.cpp.o.d"
  "test_fvn"
  "test_fvn.pdb"
  "test_fvn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fvn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
