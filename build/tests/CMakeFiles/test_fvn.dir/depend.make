# Empty dependencies file for test_fvn.
# This may be replaced when dependencies are built.
