file(REMOVE_RECURSE
  "CMakeFiles/test_ndlog_parser.dir/test_ndlog_parser.cpp.o"
  "CMakeFiles/test_ndlog_parser.dir/test_ndlog_parser.cpp.o.d"
  "test_ndlog_parser"
  "test_ndlog_parser.pdb"
  "test_ndlog_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ndlog_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
