# Empty compiler generated dependencies file for test_runtime_cti.
# This may be replaced when dependencies are built.
