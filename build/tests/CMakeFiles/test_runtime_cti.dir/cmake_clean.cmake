file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_cti.dir/test_runtime_cti.cpp.o"
  "CMakeFiles/test_runtime_cti.dir/test_runtime_cti.cpp.o.d"
  "test_runtime_cti"
  "test_runtime_cti.pdb"
  "test_runtime_cti[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_cti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
