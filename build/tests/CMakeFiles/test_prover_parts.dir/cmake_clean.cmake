file(REMOVE_RECURSE
  "CMakeFiles/test_prover_parts.dir/test_prover_parts.cpp.o"
  "CMakeFiles/test_prover_parts.dir/test_prover_parts.cpp.o.d"
  "test_prover_parts"
  "test_prover_parts.pdb"
  "test_prover_parts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prover_parts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
