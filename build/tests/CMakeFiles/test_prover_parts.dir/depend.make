# Empty dependencies file for test_prover_parts.
# This may be replaced when dependencies are built.
