# Empty dependencies file for test_ndlog_analysis.
# This may be replaced when dependencies are built.
