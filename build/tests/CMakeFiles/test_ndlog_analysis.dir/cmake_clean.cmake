file(REMOVE_RECURSE
  "CMakeFiles/test_ndlog_analysis.dir/test_ndlog_analysis.cpp.o"
  "CMakeFiles/test_ndlog_analysis.dir/test_ndlog_analysis.cpp.o.d"
  "test_ndlog_analysis"
  "test_ndlog_analysis.pdb"
  "test_ndlog_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ndlog_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
