file(REMOVE_RECURSE
  "CMakeFiles/fvn_cli.dir/fvn_cli.cpp.o"
  "CMakeFiles/fvn_cli.dir/fvn_cli.cpp.o.d"
  "fvn_cli"
  "fvn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
