# Empty compiler generated dependencies file for fvn_cli.
# This may be replaced when dependencies are built.
