# Empty compiler generated dependencies file for metarouting_design.
# This may be replaced when dependencies are built.
