file(REMOVE_RECURSE
  "CMakeFiles/metarouting_design.dir/metarouting_design.cpp.o"
  "CMakeFiles/metarouting_design.dir/metarouting_design.cpp.o.d"
  "metarouting_design"
  "metarouting_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metarouting_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
