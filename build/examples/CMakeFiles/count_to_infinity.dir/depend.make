# Empty dependencies file for count_to_infinity.
# This may be replaced when dependencies are built.
