file(REMOVE_RECURSE
  "CMakeFiles/count_to_infinity.dir/count_to_infinity.cpp.o"
  "CMakeFiles/count_to_infinity.dir/count_to_infinity.cpp.o.d"
  "count_to_infinity"
  "count_to_infinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/count_to_infinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
