file(REMOVE_RECURSE
  "CMakeFiles/verified_codegen.dir/verified_codegen.cpp.o"
  "CMakeFiles/verified_codegen.dir/verified_codegen.cpp.o.d"
  "verified_codegen"
  "verified_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verified_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
