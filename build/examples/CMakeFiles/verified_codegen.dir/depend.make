# Empty dependencies file for verified_codegen.
# This may be replaced when dependencies are built.
