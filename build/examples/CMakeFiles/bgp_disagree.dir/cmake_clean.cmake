file(REMOVE_RECURSE
  "CMakeFiles/bgp_disagree.dir/bgp_disagree.cpp.o"
  "CMakeFiles/bgp_disagree.dir/bgp_disagree.cpp.o.d"
  "bgp_disagree"
  "bgp_disagree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_disagree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
