# Empty compiler generated dependencies file for bgp_disagree.
# This may be replaced when dependencies are built.
