// fvn::ndlog::parallel unit suite — pins the shard-parallel certificate
// (DESIGN.md §16) the multi-worker engine depends on: which programs certify,
// which shard keys the search picks, where ND0023/ND0024/ND0025 fire, and
// the exact diagnostic signature over every shipped example (golden files in
// tests/golden/analyze/<stem>.parallel.txt). The *runtime* consequences —
// bit-identical fixpoints at every worker count — are cross-validated in
// tests/test_parallel_crossval.cpp.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ndlog/parallel.hpp"
#include "ndlog/parser.hpp"
#include "obs/json.hpp"
#include "runtime/localize.hpp"

namespace fvn::ndlog::parallel {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string example_source(const std::string& stem) {
  return slurp(std::filesystem::path(FVN_SOURCE_DIR) / "examples" / "ndlog" /
               (stem + ".ndlog"));
}

struct Analysis {
  Report report;
  std::vector<Diagnostic> diagnostics;
};

Analysis analyze_source(const std::string& source) {
  Analysis a;
  DiagnosticSink sink;
  a.report = analyze(parse_program(source), sink);
  a.diagnostics = sink.diagnostics();
  return a;
}

std::size_t count_code(const Analysis& a, const std::string& code) {
  std::size_t n = 0;
  for (const auto& d : a.diagnostics) n += d.code == code ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// Certified examples: the key search picks the join attribute
// ---------------------------------------------------------------------------

TEST(Parallel, PathVectorCertifiesOnTheDestinationAttribute) {
  const auto a = analyze_source(example_source("path_vector"));
  ASSERT_TRUE(a.report.certified) << a.report.fallback_reason;
  EXPECT_EQ(count_code(a, "ND0022"), 1u);
  EXPECT_EQ(count_code(a, "ND0023"), 0u);
  EXPECT_EQ(count_code(a, "ND0024"), 0u);
  // path(@S,D,P,C), bestPath(@S,D,P), bestPathCost(@S,D,C): every group
  // joins on the destination D — 0-based column 1, not the location.
  for (const std::string pred : {"path", "bestPath", "bestPathCost"}) {
    ASSERT_TRUE(a.report.keys.count(pred)) << pred;
    EXPECT_EQ(a.report.keys.at(pred).column, 1) << pred;
    EXPECT_FALSE(a.report.keys.at(pred).location) << pred;
  }
  for (const auto& group : a.report.groups) {
    EXPECT_EQ(group.mode, GroupMode::ShardedByAttribute);
  }
  // The base relation is frozen during a round, never sharded.
  EXPECT_TRUE(a.report.replicated.count("link"));
  EXPECT_TRUE(a.report.serial_rules.empty());
}

TEST(Parallel, ReachableCertifies) {
  const auto a = analyze_source(example_source("reachable"));
  ASSERT_TRUE(a.report.certified) << a.report.fallback_reason;
  EXPECT_EQ(count_code(a, "ND0022"), 1u);
  ASSERT_TRUE(a.report.keys.count("reachable"));
}

TEST(Parallel, LinkStateCertifies) {
  const auto a = analyze_source(example_source("link_state"));
  ASSERT_TRUE(a.report.certified) << a.report.fallback_reason;
  EXPECT_EQ(count_code(a, "ND0022"), 1u);
}

// ---------------------------------------------------------------------------
// ND0023 / ND0024 witnesses
// ---------------------------------------------------------------------------

TEST(Parallel, SpanningTreeWitnessesMisalignmentAndAggregateBarrier) {
  const auto a = analyze_source(example_source("spanning_tree"));
  // Degraded but still certified: misaligned groups fall back to location
  // sharding and cross-shard aggregates move to the serial barrier — neither
  // revokes the certificate.
  ASSERT_TRUE(a.report.certified) << a.report.fallback_reason;
  EXPECT_EQ(count_code(a, "ND0023"), 1u);
  EXPECT_EQ(count_code(a, "ND0024"), 2u);
  // The ND0023 hit anchors to the offending rule (st4, head distCand): its
  // root(@N,R) probe carries N where the group shards by the root attribute.
  for (const auto& d : a.diagnostics) {
    if (d.code != "ND0023") continue;
    EXPECT_EQ(d.predicate, "distCand");
    EXPECT_NE(d.message.find("st4"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("root"), std::string::npos) << d.message;
  }
  // ND0024-pinned rules land in serial_rules (ascending).
  EXPECT_EQ(a.report.serial_rules.size(), 2u);
  bool has_location_group = false;
  for (const auto& group : a.report.groups) {
    has_location_group |= group.mode == GroupMode::ShardedByLocation;
  }
  EXPECT_TRUE(has_location_group);
}

TEST(Parallel, CrossShardCountAggregateIsPinnedToTheBarrier) {
  const auto a = analyze_source(
      "b1 reach(@S,D) :- link(@S,D,C).\n"
      "b2 reach(@S,D) :- link(@S,Z,C), reach(@Z,D).\n"
      "b3 fanin(@S,count<D>) :- reach(@S,D).\n");
  ASSERT_TRUE(a.report.certified) << a.report.fallback_reason;
  // reach shards by D; fanin groups by S only, so the count crosses shards.
  EXPECT_EQ(count_code(a, "ND0024"), 1u);
  ASSERT_EQ(a.report.serial_rules.size(), 1u);
  EXPECT_EQ(a.report.serial_rules[0], 2u);
}

// ---------------------------------------------------------------------------
// ND0025 and revocation
// ---------------------------------------------------------------------------

TEST(Parallel, BaseNegationIsANoteDerivedNegationRevokes) {
  const auto base = analyze_source(
      "r1 up(@S,D) :- link(@S,D,C), !down(@S,D).\n");
  EXPECT_TRUE(base.report.certified) << base.report.fallback_reason;
  EXPECT_EQ(count_code(base, "ND0025"), 1u);
  EXPECT_EQ(base.report.negation_barriers, 1u);

  const auto derived = analyze_source(
      "r1 down(@S,D) :- link(@S,D,C).\n"
      "r2 up(@S,D) :- link(@S,D,C), !down(@S,D).\n");
  EXPECT_FALSE(derived.report.certified);
  EXPECT_NE(derived.report.fallback_reason.find("negation"), std::string::npos)
      << derived.report.fallback_reason;
}

TEST(Parallel, PredictedDivergenceRevokesTheCertificate) {
  const auto a = analyze_source(example_source("distance_vector"));
  EXPECT_FALSE(a.report.certified);
  EXPECT_NE(a.report.fallback_reason.find("ND0015"), std::string::npos)
      << a.report.fallback_reason;
  EXPECT_EQ(count_code(a, "ND0022"), 0u);
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

TEST(Parallel, JsonRendererParsesAndCarriesTheVerdict) {
  for (const std::string stem : {"path_vector", "spanning_tree", "distance_vector"}) {
    SCOPED_TRACE(stem);
    const auto a = analyze_source(example_source(stem));
    const auto doc = obs::json_parse(to_json(a.report));
    ASSERT_TRUE(doc.has_value());
    const auto* certified = doc->find("certified");
    ASSERT_NE(certified, nullptr);
    ASSERT_NE(doc->find("groups"), nullptr);
    ASSERT_NE(doc->find("keys"), nullptr);
    ASSERT_NE(doc->find("serial_rules"), nullptr);
  }
}

TEST(Parallel, DotRendererEmitsOneGraphWithGroupClusters) {
  DiagnosticSink sink;
  const auto program = parse_program(example_source("path_vector"));
  const auto report = analyze(program, sink);
  const auto dot = to_dot(program, report);
  EXPECT_EQ(dot.find("digraph"), dot.rfind("digraph"));
  EXPECT_NE(dot.find("cluster_"), std::string::npos);
  EXPECT_NE(dot.find("path"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The localized program (what the executors certify) agrees on the verdict
// ---------------------------------------------------------------------------

TEST(Parallel, LocalizedProgramsKeepTheSameVerdict) {
  for (const std::string stem :
       {"distance_vector", "link_state", "path_vector", "policy_path_vector",
        "reachable", "spanning_tree"}) {
    SCOPED_TRACE(stem);
    const auto program = parse_program(example_source(stem));
    DiagnosticSink raw_sink;
    DiagnosticSink loc_sink;
    const auto raw = analyze(program, raw_sink);
    const auto localized = analyze(runtime::localize(program), loc_sink);
    EXPECT_EQ(raw.certified, localized.certified);
  }
}

// ---------------------------------------------------------------------------
// Golden diagnostic signatures per shipped example
// ---------------------------------------------------------------------------

/// "<code> <line> r<rule_index> <predicate>" per diagnostic — the same golden
/// format test_ndlog_semantic.cpp uses for ND0014–ND0018, so the
/// machine-readable anchors `analyze --parallel --json` emits stay stable.
std::string diag_signature(const std::string& stem) {
  const auto a = analyze_source(example_source(stem));
  std::ostringstream os;
  for (const auto& d : a.diagnostics) {
    os << d.code << " " << d.span.begin.line << " r" << d.rule_index << " "
       << (d.predicate.empty() ? "-" : d.predicate) << "\n";
  }
  return os.str();
}

TEST(ParallelGolden, EveryExampleMatchesExpectedDiagnostics) {
  for (const std::string stem :
       {"distance_vector", "link_state", "path_vector", "policy_path_vector",
        "reachable", "spanning_tree"}) {
    const auto golden = slurp(std::filesystem::path(FVN_SOURCE_DIR) /
                              "tests" / "golden" / "analyze" /
                              (stem + ".parallel.txt"));
    EXPECT_EQ(diag_signature(stem), golden) << "example: " << stem;
  }
}

}  // namespace
}  // namespace fvn::ndlog::parallel
