// End-to-end tests of the Fvn facade: the full Figure-1 pipeline — design
// (meta-model / components), specification (NDlog + logic), verification
// (prover, finite model, model checker, runtime monitors), implementation
// (distributed execution).
#include <gtest/gtest.h>

#include "bgp/component_model.hpp"
#include "core/fvn.hpp"
#include "core/protocols.hpp"

namespace fvn {
namespace {

using core::Fvn;
using logic::Formula;
using logic::LTerm;
using logic::Sort;
using logic::TypedVar;
using ndlog::CmpOp;
using ndlog::Value;

logic::Theorem route_optimality() {
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto C = LTerm::var("C");
  auto P = LTerm::var("P");
  auto C2 = LTerm::var("C2");
  auto P2 = LTerm::var("P2");
  return logic::Theorem{
      "bestPathStrong",
      Formula::forall(
          {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node},
           TypedVar{"C", Sort::Metric}, TypedVar{"P", Sort::Path}},
          Formula::implies(
              Formula::pred("bestPath", {S, D, P, C}),
              Formula::negate(Formula::exists(
                  {TypedVar{"C2", Sort::Metric}, TypedVar{"P2", Sort::Path}},
                  Formula::conj({Formula::pred("path", {S, D, P2, C2}),
                                 Formula::cmp(CmpOp::Lt, C2, C)})))))};
}

TEST(FvnPipeline, FullPathVectorWorkflow) {
  Fvn fvn = Fvn::from_ndlog(core::path_vector_program());
  fvn.attach_meta_model(algebra::add_algebra());
  ASSERT_TRUE(fvn.meta_model_report().has_value());
  EXPECT_TRUE(fvn.meta_model_report()->convergent());

  fvn.add_property(route_optimality());
  auto statics = fvn.verify_statically();
  ASSERT_EQ(statics.size(), 1u);
  EXPECT_TRUE(statics[0].verified) << statics[0].detail;
  EXPECT_EQ(statics[0].backend, "prover");

  auto links = core::link_facts(core::line_topology(4));
  auto cex = fvn.search_counterexamples(links);
  ASSERT_EQ(cex.size(), 1u);
  EXPECT_TRUE(cex[0].verified) << cex[0].detail;

  ndlog::Database merged;
  auto stats = fvn.execute(links, {}, {}, &merged);
  EXPECT_TRUE(stats.quiesced);
  EXPECT_GT(merged.size("bestPath"), 0u);
}

TEST(FvnPipeline, ComponentDesignFlowsToExecution) {
  Fvn fvn = Fvn::from_components(bgp::pt_model(100, 2), bgp::pt_location_schema());
  // The generated program evaluates under the simulator with distributed
  // placement (bestRoute/activeAS at w, ptOut at u).
  std::vector<ndlog::Tuple> facts;
  facts.emplace_back("bestRoute", std::vector<Value>{Value::addr("w"), Value::integer(1),
                                                     Value::integer(7)});
  facts.emplace_back("activeAS", std::vector<Value>{Value::addr("u"), Value::addr("w"),
                                                    Value::integer(1)});
  ndlog::Database merged;
  auto stats = fvn.execute(facts, {}, {}, &merged);
  EXPECT_TRUE(stats.quiesced);
  ASSERT_EQ(merged.size("ptOut"), 1u);
  EXPECT_EQ(merged.relation("ptOut").begin()->at(2).as_int(), 10);  // 7+1+2
  // And the logic spec carries the composite definition.
  EXPECT_NE(fvn.theory().find_definition("pt"), nullptr);
}

TEST(FvnPipeline, ModelCheckBackend) {
  Fvn fvn = Fvn::from_ndlog(core::path_vector_program());
  auto outcome = fvn.model_check(
      "costPositivity", core::link_facts(core::line_topology(3)),
      [](const mc::NetState& s) {
        for (const auto& [node, tuples] : s.stored) {
          for (const auto& t : tuples) {
            if (t.predicate() == "path" && t.at(3).as_int() < 1) return false;
          }
        }
        return true;
      });
  EXPECT_TRUE(outcome.verified) << outcome.detail;
  EXPECT_EQ(outcome.backend, "model-checker");
}

TEST(FvnPipeline, RuntimeMonitorBackend) {
  Fvn fvn = Fvn::from_ndlog(core::path_vector_program());
  std::vector<runtime::Monitor> monitors;
  monitors.push_back([](const std::string&, const ndlog::Tuple& t, double) {
    return t.predicate() != "path" || t.at(3).as_int() >= 1;
  });
  auto stats = fvn.execute(core::link_facts(core::line_topology(4)), {}, monitors);
  EXPECT_EQ(stats.monitor_violations, 0u);
}

TEST(FvnPipeline, FalsePropertyCaughtByBothBackends) {
  Fvn fvn = Fvn::from_ndlog(core::path_vector_program());
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto P = LTerm::var("P");
  auto C = LTerm::var("C");
  fvn.add_property(logic::Theorem{
      "allPathsCostOne",
      Formula::forall({TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node},
                       TypedVar{"P", Sort::Path}, TypedVar{"C", Sort::Metric}},
                      Formula::implies(Formula::pred("path", {S, D, P, C}),
                                       Formula::eq(C, LTerm::constant_of(
                                                          Value::integer(1)))))});
  auto statics = fvn.verify_statically();
  EXPECT_FALSE(statics[0].verified);
  auto cex = fvn.search_counterexamples(core::link_facts(core::line_topology(3)));
  EXPECT_FALSE(cex[0].verified);
  EXPECT_NE(cex[0].detail.find("counterexample"), std::string::npos);
}

}  // namespace
}  // namespace fvn
