// SPP / SPVP tests (E3): Disagree has exactly two stable states and
// oscillates under synchronous activation; Good Gadget converges uniquely;
// Bad Gadget has no stable state and always diverges. Plus the component
// BGP model of Figure 2 (E4 input).
#include <gtest/gtest.h>

#include "bgp/component_model.hpp"
#include "bgp/spp.hpp"
#include "bgp/spp_mc.hpp"
#include "ndlog/eval.hpp"

namespace fvn {
namespace {

using namespace fvn::bgp;

TEST(Spp, DisagreeHasExactlyTwoStableStates) {
  auto states = stable_states(disagree());
  EXPECT_EQ(states.size(), 2u);
  // One has node 1 on the indirect route, the other node 2.
  bool saw_1_indirect = false, saw_2_indirect = false;
  for (const auto& a : states) {
    if (a[1] == Path{1, 2, 0}) saw_1_indirect = true;
    if (a[2] == Path{2, 1, 0}) saw_2_indirect = true;
  }
  EXPECT_TRUE(saw_1_indirect);
  EXPECT_TRUE(saw_2_indirect);
}

TEST(Spp, GoodGadgetHasUniqueStableState) {
  auto states = stable_states(good_gadget());
  ASSERT_EQ(states.size(), 1u);
  EXPECT_TRUE(is_stable(good_gadget(), states[0]));
}

TEST(Spp, BadGadgetHasNoStableState) {
  EXPECT_TRUE(stable_states(bad_gadget()).empty());
}

TEST(Spp, ShortestHopRingHasUniqueStableState) {
  for (std::size_t n : {3u, 5u, 7u}) {
    auto states = stable_states(shortest_hop_ring(n));
    EXPECT_EQ(states.size(), 1u) << "ring " << n;
  }
}

TEST(Spvp, DisagreeOscillatesSynchronously) {
  SpvpOptions options;
  options.schedule = SpvpOptions::Schedule::Synchronous;
  auto result = run_spvp(disagree(), options);
  EXPECT_TRUE(result.oscillated);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.cycle_length, 2u);  // the classic 2-phase flip
}

TEST(Spvp, DisagreeConvergesUnderRoundRobin) {
  SpvpOptions options;
  options.schedule = SpvpOptions::Schedule::RoundRobin;
  auto result = run_spvp(disagree(), options);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_stable(disagree(), result.final_assignment));
}

TEST(Spvp, GoodGadgetConvergesUnderAllSchedules) {
  for (auto schedule : {SpvpOptions::Schedule::Synchronous, SpvpOptions::Schedule::RoundRobin,
                        SpvpOptions::Schedule::Random}) {
    SpvpOptions options;
    options.schedule = schedule;
    auto result = run_spvp(good_gadget(), options);
    EXPECT_TRUE(result.converged) << static_cast<int>(schedule);
  }
}

TEST(Spvp, BadGadgetNeverConverges) {
  for (auto schedule : {SpvpOptions::Schedule::Synchronous, SpvpOptions::Schedule::RoundRobin,
                        SpvpOptions::Schedule::Random}) {
    SpvpOptions options;
    options.schedule = schedule;
    options.max_steps = 2000;
    auto result = run_spvp(bad_gadget(), options);
    EXPECT_FALSE(result.converged) << static_cast<int>(schedule);
  }
}

TEST(Spvp, RandomScheduleIsDeterministicInSeed) {
  SpvpOptions a;
  a.schedule = SpvpOptions::Schedule::Random;
  a.seed = 42;
  SpvpOptions b = a;
  auto ra = run_spvp(disagree(), a);
  auto rb = run_spvp(disagree(), b);
  EXPECT_EQ(ra.steps, rb.steps);
  EXPECT_EQ(to_string(ra.final_assignment), to_string(rb.final_assignment));
}

// ---------------------------------------------------------------------------
// Model-checking the SPVP dynamics (the mc side of E3)
// ---------------------------------------------------------------------------

TEST(SpvpMc, DisagreeOscillationFoundByCycleSearch) {
  auto report = check_oscillation(disagree());
  EXPECT_TRUE(report.has_cycle);
  EXPECT_GE(report.cycle_length, 2u);
}

TEST(SpvpMc, GoodGadgetHasNoOscillation) {
  auto report = check_oscillation(good_gadget());
  EXPECT_FALSE(report.has_cycle);
}

TEST(SpvpMc, BadGadgetOscillates) {
  auto report = check_oscillation(bad_gadget());
  EXPECT_TRUE(report.has_cycle);
}

TEST(SpvpMc, DisagreeReachesBothStableStates) {
  auto reachable = reachable_stable_states(disagree());
  std::set<std::string> keys;
  for (const auto& a : reachable) keys.insert(to_string(a));
  EXPECT_EQ(keys.size(), 2u);
}

TEST(SpvpMc, BadGadgetReachesNoStableState) {
  EXPECT_TRUE(reachable_stable_states(bad_gadget()).empty());
}

// ---------------------------------------------------------------------------
// Component BGP model (Figure 2)
// ---------------------------------------------------------------------------

TEST(ComponentBgp, GeneratedNdlogComputesRouteTransformations) {
  auto program = translate::generate_ndlog(pt_model(100, 5), pt_location_schema());
  ndlog::Evaluator eval;
  std::vector<ndlog::Tuple> facts;
  using ndlog::Value;
  facts.emplace_back("bestRoute", std::vector<Value>{Value::addr("w"), Value::integer(1),
                                                     Value::integer(10)});
  facts.emplace_back("activeAS", std::vector<Value>{Value::addr("u"), Value::addr("w"),
                                                    Value::integer(1)});
  auto result = eval.run(program, facts);
  // export keeps R1=10, pvt adds 1 -> 11, import adds 5 -> 16.
  bool found = false;
  for (const auto& t : result.database.relation("ptOut")) {
    EXPECT_EQ(t.at(2).as_int(), 16);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ComponentBgp, ExportFilterDropsExpensiveRoutes) {
  auto program = translate::generate_ndlog(pt_model(/*export_ceiling=*/50), {});
  ndlog::Evaluator eval;
  using ndlog::Value;
  std::vector<ndlog::Tuple> facts;
  facts.emplace_back("bestRoute", std::vector<Value>{Value::addr("w"), Value::integer(1),
                                                     Value::integer(99)});
  facts.emplace_back("activeAS", std::vector<Value>{Value::addr("u"), Value::addr("w"),
                                                    Value::integer(1)});
  auto result = eval.run(program, facts);
  EXPECT_EQ(result.database.size("ptOut"), 0u);
}

TEST(ComponentBgp, LogicSpecMirrorsPaperStructure) {
  auto theory = translate::generate_logic(pt_model());
  // Per-part definitions plus the composite (paper §3.2.1's pt definition).
  EXPECT_NE(theory.find_definition("exportC"), nullptr);
  EXPECT_NE(theory.find_definition("pvtC"), nullptr);
  EXPECT_NE(theory.find_definition("importC"), nullptr);
  const auto* pt = theory.find_definition("pt");
  ASSERT_NE(pt, nullptr);
  const std::string text = pt->to_string();
  EXPECT_NE(text.find("EXISTS"), std::string::npos) << text;
  EXPECT_NE(text.find("exportC"), std::string::npos) << text;
}

}  // namespace
}  // namespace fvn
