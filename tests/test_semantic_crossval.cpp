// Cross-validation of the semantic analyzer against the runtime — the
// headline guarantee of DESIGN.md §11. Every static verdict is checked
// against actual executions:
//
//   * a divergence verdict (ND0015) must reproduce as the evaluator's
//     DivergenceError on a cyclic topology;
//   * programs the analyzer calls convergent must reach a fixpoint under the
//     centralized evaluator and quiesce under both simulator engines;
//   * every order-sensitivity flag (ND0016/ND0017) must be witnessed by two
//     seeded simulator schedules producing different fixpoints;
//   * programs with no order flags must be seed-invariant under the same
//     delay jitter that exposes the racy ones.
//
// Witness topologies are chosen so the racing derivation chains traverse the
// same number of message hops — jitter multiplies each hop's delay by
// [1, 1+j], so equal-hop races flip arrival order with usable probability
// while unequal-hop ones almost never do.
//
// Also here (it needs fvn_runtime): agreement between the static
// localizability check (ND0012/ND0013's engine) and runtime::localize.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ndlog/analysis.hpp"
#include "ndlog/diagnostics.hpp"
#include "ndlog/eval.hpp"
#include "ndlog/lint.hpp"
#include "ndlog/parser.hpp"
#include "ndlog/semantic.hpp"
#include "runtime/localize.hpp"
#include "runtime/simulator.hpp"

namespace fvn::ndlog {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

Program load_example(const std::string& stem) {
  return parse_program(
      slurp(std::string(FVN_SOURCE_DIR) + "/examples/ndlog/" + stem +
            ".ndlog"),
      stem);
}

std::vector<Tuple> facts(const std::vector<std::string>& lines) {
  std::vector<Tuple> out;
  out.reserve(lines.size());
  for (const auto& l : lines) out.push_back(parse_fact(l));
  return out;
}

SemanticReport analyze(const Program& program,
                       std::vector<Diagnostic>* diags_out = nullptr) {
  DiagnosticSink sink;
  auto report = analyze_semantics(program, sink);
  if (diags_out != nullptr) *diags_out = sink.diagnostics();
  return report;
}

bool has_code(const std::vector<Diagnostic>& diags, std::string_view code) {
  for (const auto& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

/// Run the simulator to quiescence and return the merged database dump —
/// the "fixpoint" two seeds are compared on.
std::string sim_fixpoint(const Program& program,
                         const std::vector<Tuple>& base, std::uint64_t seed,
                         runtime::EngineKind engine =
                             runtime::EngineKind::Interpreter) {
  runtime::SimOptions options;
  options.seed = seed;
  options.delay_jitter = 0.9;
  options.engine = engine;
  runtime::Simulator sim(program, options);
  sim.inject_all(base);
  const auto stats = sim.run();
  EXPECT_TRUE(stats.quiesced) << program.name << " seed " << seed;
  std::ostringstream os;
  for (const auto& row : sim.merged_database().dump()) os << row << "\n";
  return os.str();
}

// A bidirectional triangle: enough topology to exercise every example's
// recursion while staying cheap for the slow-converging ones (link_state
// needs ~1000 evaluator rounds here).
const std::vector<std::string> kTriangle = {
    "link(@n0,n1,1)", "link(@n1,n0,1)", "link(@n1,n2,1)",
    "link(@n2,n1,1)", "link(@n2,n0,2)", "link(@n0,n2,2)"};

// The same triangle with coarse costs, for link_state under the simulator:
// its lspath recursion is bounded by C < 1000, so unit costs make it
// enumerate ~1000 cost levels (millions of messages) while coarse costs hit
// the bound after three hops.
const std::vector<std::string> kCoarseTriangle = {
    "link(@n0,n1,300)", "link(@n1,n0,300)", "link(@n1,n2,300)",
    "link(@n2,n1,300)", "link(@n2,n0,600)", "link(@n0,n2,600)"};

// ---------------------------------------------------------------------------
// Divergence verdicts vs the evaluator
// ---------------------------------------------------------------------------

TEST(CrossVal, DistanceVectorDivergenceReproducesUnderEvaluator) {
  const auto program = load_example("distance_vector");
  std::vector<Diagnostic> diags;
  const auto report = analyze(program, &diags);
  ASSERT_TRUE(has_code(diags, "ND0015")) << render_human(diags);
  ASSERT_TRUE(report.divergent_predicates.count("hop"));
  // The predicted divergence is real: on a directed cycle the hop costs grow
  // without bound and the evaluator burns its whole round budget.
  EvalOptions options;
  options.max_iterations = 500;
  Evaluator eval;
  EXPECT_THROW(eval.run(program,
                        facts({"link(@n0,n1,1)", "link(@n1,n2,1)",
                               "link(@n2,n0,1)"}),
                        options),
               DivergenceError);
}

TEST(CrossVal, CleanVerdictsConvergeUnderEvaluator) {
  struct Case {
    const char* stem;
    std::vector<std::string> extra;  // base facts beyond the links
  };
  const std::vector<Case> cases = {
      {"path_vector", {}},
      {"link_state", {}},
      {"reachable", {}},
      {"spanning_tree", {"node(@n0)", "node(@n1)", "node(@n2)"}},
      {"policy_path_vector",
       {"node(@n0)", "node(@n1)", "node(@n2)", "importPref(@n0,n1,100)",
        "importPref(@n0,n2,100)", "importPref(@n1,n0,100)",
        "importPref(@n1,n2,100)", "importPref(@n2,n0,100)",
        "importPref(@n2,n1,100)"}},
  };
  for (const auto& c : cases) {
    const auto program = load_example(c.stem);
    std::vector<Diagnostic> diags;
    analyze(program, &diags);
    EXPECT_FALSE(has_code(diags, "ND0015"))
        << c.stem << ":\n"
        << render_human(diags);
    auto base = facts(c.extra);
    for (const auto& f : facts(kTriangle)) base.push_back(f);
    EvalOptions options;
    options.max_iterations = 5000;
    Evaluator eval;
    EXPECT_NO_THROW(eval.run(program, base, options)) << c.stem;
  }
}

TEST(CrossVal, CleanProgramsQuiesceUnderBothEngines) {
  for (const char* stem : {"path_vector", "link_state", "reachable"}) {
    const auto program = load_example(stem);
    const auto base =
        facts(stem == std::string("link_state") ? kCoarseTriangle : kTriangle);
    // sim_fixpoint asserts stats.quiesced internally; also require the two
    // operationally-equivalent engines to agree on the fixpoint itself.
    const auto interp =
        sim_fixpoint(program, base, 1, runtime::EngineKind::Interpreter);
    const auto dataflow =
        sim_fixpoint(program, base, 1, runtime::EngineKind::Dataflow);
    EXPECT_EQ(interp, dataflow) << stem;
  }
}

// ---------------------------------------------------------------------------
// Order-sensitivity flags vs seeded schedules
// ---------------------------------------------------------------------------

TEST(CrossVal, DistanceVectorOrderFlagWitnessed) {
  const auto program = load_example("distance_vector");
  std::vector<Diagnostic> diags;
  const auto report = analyze(program, &diags);
  ASSERT_TRUE(report.order_sensitive_predicates.count("hop"));
  ASSERT_TRUE(report.order_sensitive_predicates.count("bestHop"));
  // Two equal-hop-count routes b→x→d (cost 2) and b→y→d (cost 4): the hop
  // tuple keyed (a,d,b) is overwritten with 3 or 5 depending on which of
  // b's advertisements reaches a last.
  const auto base = facts({"link(@a,b,1)", "link(@b,x,1)", "link(@x,d,1)",
                           "link(@b,y,1)", "link(@y,d,3)"});
  EXPECT_NE(sim_fixpoint(program, base, 1), sim_fixpoint(program, base, 3));
}

TEST(CrossVal, PathVectorOrderFlagWitnessed) {
  const auto program = load_example("path_vector");
  std::vector<Diagnostic> diags;
  const auto report = analyze(program, &diags);
  ASSERT_TRUE(report.order_sensitive_predicates.count("bestPath"));
  // Equal-cost diamond: bestPath(a,d) tie-breaks on arrival order.
  const auto base = facts(
      {"link(@a,b,1)", "link(@a,c,1)", "link(@b,d,1)", "link(@c,d,1)"});
  EXPECT_NE(sim_fixpoint(program, base, 1), sim_fixpoint(program, base, 3));
}

TEST(CrossVal, PolicyPathVectorOrderFlagWitnessed) {
  const auto program = load_example("policy_path_vector");
  std::vector<Diagnostic> diags;
  const auto report = analyze(program, &diags);
  ASSERT_TRUE(report.order_sensitive_predicates.count("bestRoute"));
  // Bidirectional diamond with uniform local-pref: equal-preference,
  // equal-cost routes race into bestRoute's (src,dst) key.
  const auto base = facts(
      {"link(@a,b,1)", "link(@b,a,1)", "link(@a,c,1)", "link(@c,a,1)",
       "link(@b,d,1)", "link(@d,b,1)", "link(@c,d,1)", "link(@d,c,1)",
       "node(@a)", "node(@b)", "node(@c)", "node(@d)",
       "importPref(@a,b,100)", "importPref(@a,c,100)", "importPref(@b,a,100)",
       "importPref(@b,d,100)", "importPref(@c,a,100)", "importPref(@c,d,100)",
       "importPref(@d,b,100)", "importPref(@d,c,100)"});
  EXPECT_NE(sim_fixpoint(program, base, 1), sim_fixpoint(program, base, 2));
}

TEST(CrossVal, NegationOverAsyncFlagWitnessed) {
  // Two sources race a block/probe pair into node t; b3's negation makes the
  // arrival order visible: accept(t,x) survives iff probe(t,x) was derived
  // while block(t,x) was still in flight (no retraction ever removes it).
  const auto program = parse_program(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(seedBlock, infinity, infinity, keys(1,2)).\n"
      "materialize(seedProbe, infinity, infinity, keys(1,2)).\n"
      "materialize(block, infinity, infinity, keys(1,2)).\n"
      "materialize(probe, infinity, infinity, keys(1,2)).\n"
      "materialize(accept, infinity, infinity, keys(1,2)).\n"
      "b1 block(@T,X) :- link(@S,T,_C), seedBlock(@S,X).\n"
      "b2 probe(@T,X) :- link(@S,T,_C), seedProbe(@S,X).\n"
      "b3 accept(@T,X) :- probe(@T,X), !block(@T,X).\n",
      "negrace");
  std::vector<Diagnostic> diags;
  const auto report = analyze(program, &diags);
  ASSERT_TRUE(has_code(diags, "ND0016")) << render_human(diags);
  ASSERT_TRUE(report.order_sensitive_predicates.count("accept"));
  const auto base = facts({"link(@s1,t,1)", "link(@s2,t,1)",
                           "seedBlock(@s1,x)", "seedProbe(@s2,x)"});
  EXPECT_NE(sim_fixpoint(program, base, 1), sim_fixpoint(program, base, 2));
}

TEST(CrossVal, UnflaggedProgramsAreSeedInvariant) {
  struct Case {
    const char* stem;
    std::vector<std::string> extra;
  };
  const std::vector<Case> cases = {
      {"reachable", {}},
      {"link_state", {}},
      {"spanning_tree", {"node(@n0)", "node(@n1)", "node(@n2)"}},
  };
  for (const auto& c : cases) {
    const auto program = load_example(c.stem);
    std::vector<Diagnostic> diags;
    const auto report = analyze(program, &diags);
    EXPECT_TRUE(report.order_sensitive_predicates.empty())
        << c.stem << ":\n"
        << render_human(diags);
    auto base = facts(c.extra);
    const auto& links =
        c.stem == std::string("link_state") ? kCoarseTriangle : kTriangle;
    for (const auto& f : facts(links)) base.push_back(f);
    const auto reference = sim_fixpoint(program, base, 1);
    for (std::uint64_t seed : {2, 3, 5, 8}) {
      EXPECT_EQ(sim_fixpoint(program, base, seed), reference)
          << c.stem << " diverges at seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// check_localizable vs runtime::localize agreement (ND0012/ND0013 engine)
// ---------------------------------------------------------------------------

/// Does runtime::localize accept the whole program?
bool localize_accepts(const Program& program) {
  try {
    (void)runtime::localize(program);
    return true;
  } catch (const AnalysisError&) {
    return false;
  }
}

TEST(LocalizeAgreement, SingleFeasibleOrientation) {
  // Only link carries the other location's variable: the rewrite must ship
  // link tuples to Z and join there — exactly one feasible orientation.
  const auto program = parse_program(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(q, infinity, infinity, keys(1,2)).\n"
      "materialize(p, infinity, infinity, keys(1,2)).\n"
      "r1 p(@S,D) :- link(@S,Z,_C), q(@Z,D).\n");
  const auto check = check_localizable(program.rules.at(0));
  EXPECT_EQ(check.status, LocalizationCheck::Status::Rewritable);
  EXPECT_EQ(check.join_site, "Z");
  EXPECT_EQ(check.ship_site, "S");
  EXPECT_TRUE(localize_accepts(program));
  // No ND0013: the single orientation is enough.
  DiagnosticSink sink;
  lint_program(program, sink);
  for (const auto& d : sink.diagnostics()) EXPECT_NE(d.code, "ND0013");
}

TEST(LocalizeAgreement, ThreeLocationBodyRejectedByBoth) {
  const auto program = parse_program(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(q, infinity, infinity, keys(1,2)).\n"
      "materialize(r, infinity, infinity, keys(1,2)).\n"
      "materialize(p, infinity, infinity, keys(1,2)).\n"
      "r1 p(@S,D) :- link(@S,Z,_C), q(@Z,W), r(@W,D).\n");
  const auto check = check_localizable(program.rules.at(0));
  EXPECT_EQ(check.status, LocalizationCheck::Status::TooManyLocations);
  EXPECT_FALSE(check.localizable());
  EXPECT_FALSE(localize_accepts(program));
}

TEST(LocalizeAgreement, NotLinkRestrictedRejectedByBoth) {
  // Neither atom carries the other site's location variable positively.
  const auto program = parse_program(
      "materialize(q, infinity, infinity, keys(1,2)).\n"
      "materialize(r, infinity, infinity, keys(1,2)).\n"
      "materialize(p, infinity, infinity, keys(1,2)).\n"
      "r1 p(@S,X) :- q(@S,X), r(@Z,X).\n");
  const auto check = check_localizable(program.rules.at(0));
  EXPECT_EQ(check.status, LocalizationCheck::Status::NotLinkRestricted);
  EXPECT_FALSE(localize_accepts(program));
  DiagnosticSink sink;
  lint_program(program, sink);
  bool saw_nd0013 = false;
  for (const auto& d : sink.diagnostics()) {
    if (d.code == "ND0013") {
      saw_nd0013 = true;
      EXPECT_GT(d.span.begin.line, 0);  // located, never line 0
    }
  }
  EXPECT_TRUE(saw_nd0013) << render_human(sink.diagnostics());
}

TEST(LocalizeAgreement, VerdictsMatchOnRuleZoo) {
  // check_localizable and runtime::localize must never disagree: the lint
  // exists precisely to predict the rewrite's behavior statically.
  const std::vector<std::string> bodies = {
      "p(@S,D) :- q(@S,D).",                              // local
      "p(@S,D) :- link(@S,Z,_C), q(@Z,D).",               // one orientation
      "p(@S,D) :- link(@S,Z,_C), q(@Z,D), r(@S,Z).",      // both carry both
      "p(@S,X) :- q(@S,X), r(@Z,X).",                     // not restricted
      "p(@S,D) :- link(@S,Z,_C), q(@Z,W), r(@W,D).",      // three sites
  };
  const std::string prelude =
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(q, infinity, infinity, keys(1,2)).\n"
      "materialize(r, infinity, infinity, keys(1,2)).\n"
      "materialize(p, infinity, infinity, keys(1,2)).\n";
  for (const auto& body : bodies) {
    const auto program = parse_program(prelude + "r1 " + body + "\n");
    const auto check = check_localizable(program.rules.at(0));
    EXPECT_EQ(check.localizable(), localize_accepts(program)) << body;
  }
}

}  // namespace
}  // namespace fvn::ndlog
