// fvn::dataflow tests: planner structure (strands, probe selection, dead
// strands, DOT/JSON dumps) and the differential suite pinning the engine's
// contract — interpreter and dataflow executors produce bit-identical
// fixpoints, message counts and convergence times on every shipped example
// program, under loss and delay, for soft-state/periodic protocols, and with
// the incremental-aggregate ablation flipped either way.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/protocols.hpp"
#include "dataflow/plan.hpp"
#include "ndlog/parser.hpp"
#include "obs/metrics.hpp"
#include "runtime/localize.hpp"
#include "runtime/simulator.hpp"

namespace fvn {
namespace {

using core::link_facts;
using dataflow::Element;
using ndlog::Tuple;
using ndlog::Value;
using runtime::EngineKind;
using runtime::SimOptions;
using runtime::SimStats;
using runtime::Simulator;

// ---------------------------------------------------------------------------
// Planner structure
// ---------------------------------------------------------------------------

dataflow::Plan plan_of(const std::string& source,
                       const dataflow::PlanOptions& options = {}) {
  auto program = ndlog::parse_program(source, "plan_test");
  return dataflow::compile(runtime::localize(program), options);
}

const dataflow::Strand* find_strand(const dataflow::Plan& plan,
                                    const std::string& rule_label,
                                    std::size_t delta_position) {
  for (const auto& s : plan.strands) {
    if (s.rule_label == rule_label && s.delta_position == delta_position) return &s;
  }
  return nullptr;
}

std::vector<Element::Kind> kinds_of(const dataflow::Strand& strand) {
  std::vector<Element::Kind> kinds;
  for (const auto& e : strand.elements) kinds.push_back(e.kind);
  return kinds;
}

TEST(Planner, OneStrandPerPositiveAtomPosition) {
  // Localized path-vector: r2 becomes {link, path_sh_r2_1} + ship rule.
  auto plan = plan_of(core::path_vector_source());
  std::map<std::string, std::size_t> per_rule;
  for (const auto& s : plan.strands) ++per_rule[s.rule_label];
  EXPECT_EQ(per_rule.at("r1"), 1u);
  EXPECT_EQ(per_rule.at("r2"), 2u);  // two positive atoms after localization
  EXPECT_EQ(per_rule.at("r4"), 2u);
  // r3 is an aggregate rule: planned separately.
  EXPECT_EQ(per_rule.count("r3"), 0u);
  ASSERT_EQ(plan.aggregates.size(), 1u);
  EXPECT_EQ(plan.aggregates[0].rule_label, "r3");
}

TEST(Planner, StrandShapeDeltaJoinProjectDemux) {
  auto plan = plan_of(core::path_vector_source());
  // r4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
  // Delta on bestPathCost joins path; all of path's bindable args checked.
  const auto* s = find_strand(*&plan, "r4", 0);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->delta_predicate, "bestPathCost");
  EXPECT_FALSE(s->dead);
  auto kinds = kinds_of(*s);
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], Element::Kind::Delta);
  EXPECT_EQ(kinds[1], Element::Kind::IndexJoin);
  EXPECT_EQ(kinds[2], Element::Kind::Project);
  EXPECT_EQ(kinds[3], Element::Kind::Demux);
  // Probe column: path's first argument (S), bound by the delta.
  EXPECT_EQ(s->elements[1].predicate, "path");
  EXPECT_EQ(s->elements[1].probe_pos, 0);
}

TEST(Planner, ChecksDischargeEagerly) {
  // The C=C1+C2 bind and the C<1000 select must sit at the first point all
  // their inputs are bound, exactly where the interpreter discharges them.
  auto plan = plan_of(
      "a1 out(@S,C) :- e(@S,A), f(@S,B), C=A+B, C<1000.\n");
  const auto* s = find_strand(plan, "a1", 0);
  ASSERT_NE(s, nullptr);
  auto kinds = kinds_of(*s);
  // Delta(e) -> IndexJoin(f) -> Bind(C) -> Select(C<1000) -> Project -> Demux
  ASSERT_EQ(kinds.size(), 6u);
  EXPECT_EQ(kinds[0], Element::Kind::Delta);
  EXPECT_EQ(kinds[1], Element::Kind::IndexJoin);
  EXPECT_EQ(kinds[2], Element::Kind::Bind);
  EXPECT_EQ(kinds[3], Element::Kind::Select);
  EXPECT_EQ(kinds[4], Element::Kind::Project);
  EXPECT_EQ(kinds[5], Element::Kind::Demux);
}

TEST(Planner, NegatedAtomBecomesNegProbe) {
  auto plan = plan_of(
      "b1 out(@S,D) :- e(@S,D), !blocked(@S,D).\n");
  const auto* s = find_strand(plan, "b1", 0);
  ASSERT_NE(s, nullptr);
  auto kinds = kinds_of(*s);
  ASSERT_GE(kinds.size(), 2u);
  EXPECT_EQ(kinds[1], Element::Kind::NegProbe);
  EXPECT_EQ(s->elements[1].predicate, "blocked");
}

TEST(Planner, ProbeSelectionMatchesInterpreterEnumeration) {
  // The interpreter enumerates atoms in body order with the delta at its
  // original position. For delta = e (position 0), g is joined after S is
  // bound -> index probe on g's first column. For delta = g (position 1),
  // e is enumerated *before* the delta binds anything -> full scan, with
  // the Delta element sitting downstream at its body position.
  auto plan = plan_of("c1 out(@S,D) :- e(@S,D), g(@S).\n");

  const auto* d0 = find_strand(plan, "c1", 0);
  ASSERT_NE(d0, nullptr);
  ASSERT_GE(d0->elements.size(), 2u);
  EXPECT_EQ(d0->elements[0].kind, Element::Kind::Delta);
  EXPECT_EQ(d0->elements[1].kind, Element::Kind::IndexJoin);
  EXPECT_EQ(d0->elements[1].predicate, "g");
  EXPECT_EQ(d0->elements[1].probe_pos, 0);

  const auto* d1 = find_strand(plan, "c1", 1);
  ASSERT_NE(d1, nullptr);
  ASSERT_GE(d1->elements.size(), 2u);
  EXPECT_EQ(d1->elements[0].kind, Element::Kind::Scan);
  EXPECT_EQ(d1->elements[0].predicate, "e");
  EXPECT_EQ(d1->elements[1].kind, Element::Kind::Delta);
}

TEST(Planner, AggregateRuleGetsAggregateTerminal) {
  auto plan = plan_of(core::path_vector_source());
  ASSERT_EQ(plan.aggregates.size(), 1u);
  const auto& agg = plan.aggregates[0];
  EXPECT_TRUE(agg.incremental);
  EXPECT_EQ(agg.kind, ndlog::AggKind::Min);
  ASSERT_EQ(agg.strands.size(), 1u);  // one positive atom (path)
  const auto& strand = agg.strands[0];
  ASSERT_FALSE(strand.elements.empty());
  EXPECT_EQ(strand.elements.back().kind, Element::Kind::Aggregate);
  EXPECT_TRUE(agg.body_predicates.count("path"));
}

TEST(Planner, SelfJoinAggregateFallsBackToRecompute) {
  auto plan = plan_of(
      "materialize(e, infinity, infinity, keys(1,2)).\n"
      "j1 m(@S,min<C>) :- e(@S,A), e(@S,C).\n");
  ASSERT_EQ(plan.aggregates.size(), 1u);
  EXPECT_FALSE(plan.aggregates[0].incremental);
  EXPECT_FALSE(plan.aggregates[0].mode_reason.empty());
}

TEST(Planner, AblationForcesRecompute) {
  dataflow::PlanOptions options;
  options.incremental_aggregates = false;
  auto plan = plan_of(core::path_vector_source(), options);
  ASSERT_EQ(plan.aggregates.size(), 1u);
  EXPECT_FALSE(plan.aggregates[0].incremental);
}

TEST(Planner, DumpsAreWellFormed) {
  auto plan = plan_of(core::path_vector_source());
  EXPECT_GT(plan.element_count(), 0u);

  const std::string dot = plan.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));

  const std::string json = plan.to_json();
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"strands\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregates\""), std::string::npos);

  EXPECT_FALSE(plan.summary().empty());
}

// ---------------------------------------------------------------------------
// Differential suite: interpreter vs dataflow
// ---------------------------------------------------------------------------

struct RunResult {
  SimStats stats;
  std::map<std::string, std::vector<std::string>> dbs;
};

struct Workload {
  std::vector<Tuple> facts;
  std::vector<std::pair<Tuple, double>> retractions;
};

RunResult run_one(const ndlog::Program& program, const Workload& workload,
                  SimOptions options, EngineKind engine) {
  options.engine = engine;
  Simulator sim(program, options);
  sim.inject_all(workload.facts);
  for (const auto& [tuple, at] : workload.retractions) sim.retract(tuple, at);
  RunResult result;
  result.stats = sim.run();
  for (const auto& node : sim.nodes()) result.dbs[node] = sim.database(node).dump();
  return result;
}

/// Run under both engines and require the observable behavior to be
/// *identical*: same event/message/drop counts, same convergence instant,
/// same per-node database contents. This is the operational-equivalence
/// contract of DESIGN.md §10.
void expect_engines_agree(const ndlog::Program& program, const Workload& workload,
                          const SimOptions& options, const std::string& label) {
  SCOPED_TRACE(label);
  auto a = run_one(program, workload, options, EngineKind::Interpreter);
  auto b = run_one(program, workload, options, EngineKind::Dataflow);

  EXPECT_EQ(a.stats.events_processed, b.stats.events_processed);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.messages_dropped, b.stats.messages_dropped);
  EXPECT_EQ(a.stats.tuples_derived, b.stats.tuples_derived);
  EXPECT_EQ(a.stats.overwrites, b.stats.overwrites);
  EXPECT_EQ(a.stats.expirations, b.stats.expirations);
  EXPECT_EQ(a.stats.quiesced, b.stats.quiesced);
  EXPECT_DOUBLE_EQ(a.stats.last_change_time, b.stats.last_change_time);
  EXPECT_EQ(a.stats.last_change_by_predicate, b.stats.last_change_by_predicate);

  ASSERT_EQ(a.dbs.size(), b.dbs.size());
  for (const auto& [node, rows] : a.dbs) {
    ASSERT_TRUE(b.dbs.count(node)) << node;
    EXPECT_EQ(rows, b.dbs.at(node)) << "node " << node;
  }
}

Workload topology_workload(const std::vector<core::Link>& links,
                           bool with_nodes = false, bool with_pref = false) {
  Workload w;
  std::set<std::string> names;
  for (const auto& l : links) {
    names.insert(l.src);
    names.insert(l.dst);
  }
  if (with_nodes) {
    for (const auto& n : names) w.facts.emplace_back("node", std::vector<Value>{Value::addr(n)});
  }
  for (const auto& t : link_facts(links)) w.facts.push_back(t);
  if (with_pref) {
    for (const auto& l : links) {
      w.facts.emplace_back(
          "importPref",
          std::vector<Value>{Value::addr(l.src), Value::addr(l.dst), Value::integer(100)});
    }
  }
  return w;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Differential, EveryExampleProgramAgrees) {
  const std::filesystem::path dir =
      std::filesystem::path(FVN_SOURCE_DIR) / "examples" / "ndlog";
  std::size_t tested = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".ndlog") continue;
    const std::string name = entry.path().filename().string();
    auto program = ndlog::parse_program(slurp(entry.path()), name);

    const bool policy = name == "policy_path_vector.ndlog";
    const bool tree = name == "spanning_tree.ndlog";
    auto links = core::random_topology(5, 2, 7);
    SimOptions options;
    if (name == "distance_vector.ndlog") {
      // DV counts to infinity on cyclic topologies; compare the truncated
      // prefix — both engines process the identical event stream.
      options.max_events = 2'000;
    } else if (name == "link_state.ndlog") {
      // link_state's C<1000 closure enumerates every walk cost below the
      // bound; with 400-cost links only 1- and 2-hop walks survive, so the
      // run stays small and quiesces.
      links = core::line_topology(3, /*cost=*/400);
    }
    auto workload = topology_workload(links, /*with_nodes=*/policy || tree,
                                      /*with_pref=*/policy);
    expect_engines_agree(program, workload, options, name);
    ++tested;
  }
  EXPECT_GE(tested, 6u);
}

TEST(Differential, PathVectorUnderLossAndDelaySeeds) {
  // Seeded loss means the engines must consume rng draws in exactly the same
  // order — any divergence in message emission order shows up here.
  auto program = core::path_vector_program();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto workload = topology_workload(core::random_topology(6, 3, seed));
    SimOptions options;
    options.seed = seed;
    options.loss_rate = 0.2;
    options.default_link_delay = 0.05;
    expect_engines_agree(program, workload, options,
                         "path_vector loss seed=" + std::to_string(seed));
  }
}

TEST(Differential, PolicyPathVectorWithFiltersAgrees) {
  // E5 flavor: export/import deny lists and mixed local-prefs exercise the
  // negated-atom (NegProbe) path and the max<>-then-min<> aggregate cascade.
  auto program = core::policy_path_vector_program();
  auto links = core::ring_topology(5);
  auto workload = topology_workload(links, /*with_nodes=*/true, /*with_pref=*/false);
  std::uint64_t i = 0;
  for (const auto& l : links) {
    workload.facts.emplace_back(
        "importPref", std::vector<Value>{Value::addr(l.src), Value::addr(l.dst),
                                         Value::integer(100 + 10 * (i++ % 3))});
  }
  workload.facts.emplace_back(
      "exportDeny", std::vector<Value>{Value::addr("n0"), Value::addr("n1"),
                                       Value::addr("n3")});
  workload.facts.emplace_back(
      "importDeny", std::vector<Value>{Value::addr("n2"), Value::addr("n3"),
                                       Value::addr("n0")});
  expect_engines_agree(program, workload, SimOptions{}, "policy ring");
}

/// Periodic soft-state DV (the E8 native-soft-state workload of
/// test_runtime_cti.cpp): expirations, refreshes, periodic events and a
/// mid-run link retraction, under an unstratified program.
const char* kSoftDv = R"(
  materialize(link, infinity, infinity, keys(1,2)).
  materialize(own, infinity, infinity, keys(1,2)).
  materialize(adv, 2.5, infinity, keys(1,2,3)).
  materialize(hop, 2.5, infinity, keys(1,2,3)).
  materialize(bestHopCost, infinity, infinity, keys(1,2)).
  materialize(bestHop, infinity, infinity, keys(1,2)).

  c0 adv(@M,D,D,C) :- periodic(@D,I), own(@D,D), link(@D,M,C1), C=0.
  c2 hop(@N,D,M,C) :- periodic(@N,I), adv(@N,M,D,C2), link(@N,M,C1), C=C1+C2, N != D.
  c3 bestHopCost(@N,D,min<C>) :- hop(@N,D,M,C).
  c4 bestHop(@N,D,M,C) :- bestHopCost(@N,D,C), hop(@N,D,M,C).
  c5 adv(@M,N,D,C) :- periodic(@N,I), bestHop(@N,D,Z,C), link(@N,M,C1).
)";

TEST(Differential, SoftStatePeriodicWithRetractionAgrees) {
  auto program = ndlog::parse_program(kSoftDv, "soft_dv");
  Workload workload = topology_workload(core::line_topology(3));
  workload.facts.emplace_back("own",
                              std::vector<Value>{Value::addr("n0"), Value::addr("n0")});
  workload.retractions.emplace_back(
      Tuple("link", {Value::addr("n1"), Value::addr("n0"), Value::integer(1)}), 4.6);
  SimOptions options;
  options.max_periodic_rounds = 12;
  options.periodic_interval = 1.0;
  options.require_stratified = false;
  expect_engines_agree(program, workload, options, "soft_dv retraction");
}

TEST(Differential, IncrementalAblationMatchesIncremental) {
  // The recompute fallback and incremental view maintenance must be
  // indistinguishable from the outside (same flush diffs in the same order).
  auto program = core::path_vector_program();
  auto workload = topology_workload(core::random_topology(6, 3, 11));
  SimOptions options;
  options.engine = EngineKind::Dataflow;

  options.incremental_aggregates = true;
  auto inc = run_one(program, workload, options, EngineKind::Dataflow);
  options.incremental_aggregates = false;
  auto rec = run_one(program, workload, options, EngineKind::Dataflow);

  EXPECT_EQ(inc.stats.messages_sent, rec.stats.messages_sent);
  EXPECT_EQ(inc.stats.events_processed, rec.stats.events_processed);
  EXPECT_DOUBLE_EQ(inc.stats.last_change_time, rec.stats.last_change_time);
  EXPECT_EQ(inc.dbs, rec.dbs);
}

// ---------------------------------------------------------------------------
// Integration details
// ---------------------------------------------------------------------------

TEST(DataflowSim, ExposesPlanAndElementCounters) {
  obs::Registry registry;
  SimOptions options;
  options.engine = EngineKind::Dataflow;
  options.metrics = &registry;
  Simulator sim(core::path_vector_program(), options);
  EXPECT_NE(sim.plan(), nullptr);
  sim.inject_all(link_facts(core::line_topology(4)));
  auto stats = sim.run();
  EXPECT_TRUE(stats.quiesced);
  // Per-element in/out counters were recorded under dataflow/elem/...
  EXPECT_GT(registry.sum_counters_with_prefix("dataflow/elem/"), 0u);
}

TEST(DataflowSim, InterpreterModeHasNoPlan) {
  Simulator sim(core::path_vector_program(), SimOptions{});
  EXPECT_EQ(sim.plan(), nullptr);
}

TEST(Localize, ShipRulesCarrySourceSpans) {
  // Satellite bugfix: generated *_sh_* rules are stamped with the span of the
  // rule they came from, so diagnostics about them point at user code.
  auto program = core::path_vector_program();
  const ndlog::Rule* r2 = nullptr;
  for (const auto& r : program.rules) {
    if (r.name == "r2") r2 = &r;
  }
  ASSERT_NE(r2, nullptr);
  ASSERT_NE(r2->loc.line, 0);

  auto localized = runtime::localize(program);
  bool saw_ship = false;
  for (const auto& r : localized.rules) {
    if (r.name.find("_sh_") == std::string::npos) continue;
    saw_ship = true;
    EXPECT_EQ(r.loc.line, r2->loc.line);
    EXPECT_NE(r.head.loc.line, 0);
  }
  EXPECT_TRUE(saw_ship);
}

}  // namespace
}  // namespace fvn
