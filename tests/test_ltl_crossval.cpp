// LTL cross-validation: the model-checker verdict and the runtime-monitor
// verdict must agree on every shipped example, for both rule engines and
// both cluster transports. Each example carries a satisfied spec
// (examples/ndlog/<name>.ltl) and a deliberately violated one
// (<name>_violated.ltl) that must fail on *every* schedule — proving the
// monitors actually fire, not merely that satisfied specs pass.
//
// Also pins the engine-agnostic tuple-event stream shape (cat "tuple"
// instants with {"node":...,"tuple":...} args) for both the simulator and
// fvn::net: folding install/retract/expire over the stream must reproduce
// each engine's final per-node database exactly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "ltl/checker.hpp"
#include "ltl/formula.hpp"
#include "ltl/monitor.hpp"
#include "mc/ndlog_ts.hpp"
#include "ndlog/parser.hpp"
#include "net/cluster.hpp"
#include "runtime/simulator.hpp"

namespace fvn {
namespace {

using ndlog::Tuple;
using ndlog::Value;
using runtime::EngineKind;

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::filesystem::path example_dir() {
  return std::filesystem::path(FVN_SOURCE_DIR) / "examples" / "ndlog";
}

struct Case {
  std::string name;
  ndlog::Program program;
  ltl::Spec spec;           // satisfied on every schedule
  ltl::Spec violated_spec;  // violated on every schedule
  std::vector<Tuple> facts;
};

Tuple link(const char* s, const char* d, int c) {
  return Tuple("link", {Value::addr(s), Value::addr(d), Value::integer(c)});
}
Tuple node(const char* n) { return Tuple("node", {Value::addr(n)}); }

// The facts mirror the topology documented at the top of each .ltl file —
// small enough that fvn::mc explores every interleaving exhaustively.
std::vector<Case> load_cases() {
  std::vector<Case> cases;
  const std::map<std::string, std::vector<Tuple>> facts = {
      {"path_vector", {link("n0", "n1", 1), link("n1", "n0", 1),
                       link("n1", "n2", 1), link("n2", "n1", 1)}},
      // Directed acyclic: DV counts to infinity on any cycle.
      {"distance_vector", {link("n0", "n1", 1), link("n1", "n2", 1)}},
      {"reachable", {link("n0", "n1", 1), link("n1", "n0", 1),
                     link("n1", "n2", 1), link("n2", "n1", 1)}},
      // Coarse costs keep the C<1000 walk closure at <= 2 hops.
      {"link_state", {link("n0", "n1", 400), link("n1", "n0", 400)}},
      {"policy_path_vector",
       {node("n0"), node("n1"), link("n0", "n1", 1), link("n1", "n0", 1),
        Tuple("importPref", {Value::addr("n0"), Value::addr("n1"),
                             Value::integer(100)}),
        Tuple("importPref", {Value::addr("n1"), Value::addr("n0"),
                             Value::integer(100)})}},
      // Directed link: keeps distCand's hop counter from ping-ponging up to
      // its D<100 bound.
      {"spanning_tree", {node("n0"), node("n1"), link("n1", "n0", 1)}},
  };
  for (const auto& [name, f] : facts) {
    Case c;
    c.name = name;
    c.program = ndlog::parse_program(slurp(example_dir() / (name + ".ndlog")),
                                     name + ".ndlog");
    c.spec = ltl::parse_spec(slurp(example_dir() / (name + ".ltl")),
                             name + ".ltl");
    c.violated_spec = ltl::parse_spec(
        slurp(example_dir() / (name + "_violated.ltl")), name + "_violated.ltl");
    c.facts = f;
    EXPECT_FALSE(c.spec.properties.empty()) << name;
    EXPECT_FALSE(c.violated_spec.properties.empty()) << name;
    cases.push_back(std::move(c));
  }
  return cases;
}

// Run the spec's monitors over a simulator execution via the live hook.
std::vector<ltl::MonitorVerdict> sim_monitor_verdicts(const Case& c,
                                                      const ltl::Spec& spec,
                                                      EngineKind engine) {
  ltl::MonitorSet monitors(spec);
  runtime::SimOptions options;
  options.engine = engine;
  options.tuple_events = [&monitors](std::string_view kind,
                                     const std::string& node_name,
                                     const Tuple& tuple, double now) {
    ltl::TupleEvent e;
    e.kind = kind == "install" ? ltl::TupleEvent::Kind::Install
             : kind == "retract" ? ltl::TupleEvent::Kind::Retract
                                 : ltl::TupleEvent::Kind::Expire;
    e.node = node_name;
    e.tuple = tuple;
    e.ts_us = static_cast<std::uint64_t>(now * 1e6);
    monitors.on_event(e);
  };
  runtime::Simulator sim(c.program, options);
  sim.inject_all(c.facts);
  const auto stats = sim.run();
  EXPECT_TRUE(stats.quiesced) << c.name;
  EXPECT_GT(monitors.events(), 0u) << c.name;
  return monitors.finish();
}

// Run the spec's monitors over a recorded cluster trace.
std::vector<ltl::MonitorVerdict> cluster_monitor_verdicts(
    const Case& c, const ltl::Spec& spec, net::ClusterOptions options) {
  options.capture_tuple_events = true;
  net::Cluster cluster(c.program, options);
  cluster.inject_all(c.facts);
  const auto stats = cluster.run();
  EXPECT_TRUE(stats.quiesced) << c.name;
  const auto events = ltl::events_from_trace(cluster.tuple_events());
  EXPECT_FALSE(events.empty()) << c.name;
  ltl::MonitorSet monitors(spec);
  for (const auto& e : events) monitors.on_event(e);
  return monitors.finish();
}

void expect_all_satisfied(const std::vector<ltl::MonitorVerdict>& verdicts,
                          const std::string& context) {
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.satisfied) << context << ": " << v.property << ": " << v.formula;
  }
}

void expect_all_fired(const std::vector<ltl::MonitorVerdict>& verdicts,
                      const std::string& context) {
  for (const auto& v : verdicts) {
    EXPECT_FALSE(v.satisfied) << context << ": " << v.property;
    EXPECT_TRUE(v.fired) << context << ": " << v.property
                         << " (violated specs are safety-shaped: the monitor "
                            "must fire mid-trace, not just at finish)";
    EXPECT_GT(v.violation_event, 0u) << context << ": " << v.property;
  }
}

// ---------------------------------------------------------------------------
// Model checker: satisfied specs hold exhaustively, violated specs produce
// lasso counterexamples with full snapshots.
// ---------------------------------------------------------------------------

TEST(LtlCrossval, ModelCheckerVerdicts) {
  for (const auto& c : load_cases()) {
    SCOPED_TRACE(c.name);
    mc::NdlogTransitionSystem ts(c.program);
    const auto initial = ts.initial(c.facts);

    const auto sat = ltl::check_ltl(ts, initial, c.spec);
    EXPECT_TRUE(sat.all_hold());
    EXPECT_TRUE(sat.exhausted());

    const auto viol = ltl::check_ltl(ts, initial, c.violated_spec);
    for (const auto& p : viol.properties) {
      EXPECT_FALSE(p.holds) << p.name;
      EXPECT_FALSE(p.stem.empty()) << p.name;
      EXPECT_FALSE(p.cycle.empty()) << p.name;
      // Full snapshots: some stem state has stored tuples.
      EXPECT_FALSE(p.stem.back().state.stored.empty()) << p.name;
      EXPECT_FALSE(ltl::render_counterexample(p).empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Simulator monitors agree with the model checker, on both engines.
// ---------------------------------------------------------------------------

TEST(LtlCrossval, SimulatorMonitorsAgreeBothEngines) {
  for (const auto& c : load_cases()) {
    for (const EngineKind engine :
         {EngineKind::Interpreter, EngineKind::Dataflow}) {
      const std::string context =
          c.name + (engine == EngineKind::Interpreter ? "/interpreter"
                                                      : "/dataflow");
      SCOPED_TRACE(context);
      expect_all_satisfied(sim_monitor_verdicts(c, c.spec, engine), context);
      expect_all_fired(sim_monitor_verdicts(c, c.violated_spec, engine), context);
    }
  }
}

// ---------------------------------------------------------------------------
// Cluster monitors agree too — threaded nodes, real transports.
// ---------------------------------------------------------------------------

TEST(LtlCrossval, ClusterMonitorsAgreeInprocBothEngines) {
  for (const auto& c : load_cases()) {
    for (const EngineKind engine :
         {EngineKind::Interpreter, EngineKind::Dataflow}) {
      const std::string context =
          c.name + (engine == EngineKind::Interpreter ? "/interpreter"
                                                      : "/dataflow");
      SCOPED_TRACE(context);
      net::ClusterOptions options;
      options.engine = engine;
      expect_all_satisfied(cluster_monitor_verdicts(c, c.spec, options), context);
      expect_all_fired(cluster_monitor_verdicts(c, c.violated_spec, options),
                       context);
    }
  }
}

TEST(LtlCrossval, ClusterMonitorsAgreeUdp) {
  for (const auto& c : load_cases()) {
    SCOPED_TRACE(c.name);
    net::ClusterOptions options;
    options.transport = net::TransportKind::Udp;
    try {
      expect_all_satisfied(cluster_monitor_verdicts(c, c.spec, options),
                           c.name + "/udp");
      expect_all_fired(cluster_monitor_verdicts(c, c.violated_spec, options),
                       c.name + "/udp");
    } catch (const net::TransportError& e) {
      GTEST_SKIP() << "UDP sockets unavailable here: " << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// Tuple-event stream shape: identical across engines, and folding it
// reproduces the final databases exactly.
// ---------------------------------------------------------------------------

using Folded = std::map<std::string, std::multiset<std::string>>;

template <typename Events>
Folded fold(const Events& events) {
  Folded db;
  for (const auto& e : events) {
    auto& rel = db[e.node];
    const std::string text = e.tuple.to_string();
    if (e.kind == ltl::TupleEvent::Kind::Install) {
      rel.insert(text);
    } else {
      const auto it = rel.find(text);
      if (it == rel.end()) {
        ADD_FAILURE() << "retract/expire of a tuple never installed at "
                      << e.node << ": " << text;
        continue;
      }
      rel.erase(it);
    }
  }
  return db;
}

void expect_folds_to(const Folded& folded,
                     const std::function<const ndlog::Database&(
                         const std::string&)>& database,
                     const std::vector<std::string>& nodes) {
  for (const auto& n : nodes) {
    std::multiset<std::string> expected;
    for (const auto& row : database(n).dump()) expected.insert(row);
    const auto it = folded.find(n);
    const std::multiset<std::string> got =
        it == folded.end() ? std::multiset<std::string>{} : it->second;
    EXPECT_EQ(got, expected) << "node " << n;
  }
}

TEST(LtlCrossval, SimulatorTupleStreamFoldsToDatabase) {
  for (const auto& c : load_cases()) {
    SCOPED_TRACE(c.name);
    // Capture both the live hook and the obs trace; the recorded stream must
    // decode back to the exact live stream (the shape contract).
    std::vector<ltl::TupleEvent> live;
    obs::Trace trace;
    runtime::SimOptions options;
    options.obs_trace = &trace;
    options.tuple_events = [&live](std::string_view kind,
                                   const std::string& node_name,
                                   const Tuple& tuple, double now) {
      ltl::TupleEvent e;
      e.kind = kind == "install" ? ltl::TupleEvent::Kind::Install
               : kind == "retract" ? ltl::TupleEvent::Kind::Retract
                                   : ltl::TupleEvent::Kind::Expire;
      e.node = node_name;
      e.tuple = tuple;
      e.ts_us = static_cast<std::uint64_t>(now * 1e6);
      live.push_back(e);
    };
    runtime::Simulator sim(c.program, options);
    sim.inject_all(c.facts);
    EXPECT_TRUE(sim.run().quiesced);

    const auto decoded = ltl::events_from_trace(trace.events());
    ASSERT_EQ(decoded.size(), live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(decoded[i].kind, live[i].kind);
      EXPECT_EQ(decoded[i].node, live[i].node);
      EXPECT_EQ(decoded[i].tuple.to_string(), live[i].tuple.to_string());
    }

    const Folded folded = fold(live);
    expect_folds_to(
        folded,
        [&sim](const std::string& n) -> const ndlog::Database& {
          return sim.database(n);
        },
        sim.nodes());
  }
}

TEST(LtlCrossval, ClusterTupleStreamFoldsToDatabase) {
  for (const auto& c : load_cases()) {
    SCOPED_TRACE(c.name);
    net::ClusterOptions options;
    options.capture_tuple_events = true;
    net::Cluster cluster(c.program, options);
    cluster.inject_all(c.facts);
    EXPECT_TRUE(cluster.run().quiesced);
    // Same shape as the simulator: cat "tuple", name "<kind> <pred>",
    // {"node":...,"tuple":...} args — decoded by the same function.
    for (const auto& raw : cluster.tuple_events()) {
      EXPECT_EQ(raw.cat, "tuple");
      EXPECT_NE(raw.args_json.find("\"node\""), std::string::npos);
      EXPECT_NE(raw.args_json.find("\"tuple\""), std::string::npos);
    }
    const auto events = ltl::events_from_trace(cluster.tuple_events());
    EXPECT_EQ(events.size(), cluster.tuple_events().size());
    const Folded folded = fold(events);
    expect_folds_to(
        folded,
        [&cluster](const std::string& n) -> const ndlog::Database& {
          return cluster.database(n);
        },
        cluster.nodes());
  }
}

}  // namespace
}  // namespace fvn
