// The dynamic count-to-infinity demonstration (E2, runtime flavor): a
// soft-state distance-vector protocol with periodic advertisements, run on
// the discrete-event simulator. After a link failure the surviving nodes
// bounce the stale route between each other with climbing cost — observed
// live by a runtime monitor. Split-horizon filtering (expressible in NDlog
// with one extra condition) stops the climb.
#include <gtest/gtest.h>

#include "core/protocols.hpp"
#include "ndlog/parser.hpp"
#include "runtime/simulator.hpp"

namespace fvn {
namespace {

using ndlog::Tuple;
using ndlog::Value;

/// Periodic soft-state DV. adv(@M,N,D,C): node N advertises to neighbor M a
/// route to D of cost C. No split horizon: N re-advertises to everyone.
const char* kSoftDv = R"(
  materialize(link, infinity, infinity, keys(1,2)).
  materialize(own, infinity, infinity, keys(1,2)).
  materialize(adv, 2.5, infinity, keys(1,2,3)).
  materialize(hop, 2.5, infinity, keys(1,2,3)).
  materialize(bestHopCost, infinity, infinity, keys(1,2)).
  materialize(bestHop, infinity, infinity, keys(1,2)).

  c0 adv(@M,D,D,C) :- periodic(@D,I), own(@D,D), link(@D,M,C1), C=0.
  c2 hop(@N,D,M,C) :- periodic(@N,I), adv(@N,M,D,C2), link(@N,M,C1), C=C1+C2, N != D.
  c3 bestHopCost(@N,D,min<C>) :- hop(@N,D,M,C).
  c4 bestHop(@N,D,M,C) :- bestHopCost(@N,D,C), hop(@N,D,M,C).
  c5 adv(@M,N,D,C) :- periodic(@N,I), bestHop(@N,D,Z,C), link(@N,M,C1).
)";

/// Split-horizon variant: N does not advertise D back to the neighbor it
/// routes through (Z != M).
const char* kSoftDvSplitHorizon = R"(
  materialize(link, infinity, infinity, keys(1,2)).
  materialize(own, infinity, infinity, keys(1,2)).
  materialize(adv, 2.5, infinity, keys(1,2,3)).
  materialize(hop, 2.5, infinity, keys(1,2,3)).
  materialize(bestHopCost, infinity, infinity, keys(1,2)).
  materialize(bestHop, infinity, infinity, keys(1,2)).

  c0 adv(@M,D,D,C) :- periodic(@D,I), own(@D,D), link(@D,M,C1), C=0.
  c2 hop(@N,D,M,C) :- periodic(@N,I), adv(@N,M,D,C2), link(@N,M,C1), C=C1+C2, N != D.
  c3 bestHopCost(@N,D,min<C>) :- hop(@N,D,M,C).
  c4 bestHop(@N,D,M,C) :- bestHopCost(@N,D,C), hop(@N,D,M,C).
  c5 adv(@M,N,D,C) :- periodic(@N,I), bestHop(@N,D,Z,C), link(@N,M,C1), Z != M.
)";

struct CtiRun {
  std::size_t violations = 0;
  std::int64_t max_cost_seen = 0;
};

CtiRun run_soft_dv(const char* source, double fail_at, std::size_t rounds) {
  auto program = ndlog::parse_program(source, "soft_dv");
  runtime::SimOptions options;
  options.max_periodic_rounds = rounds;
  options.periodic_interval = 1.0;
  options.max_events = 2'000'000;
  // The adv/bestHop feedback loop is unstratified by design — time, not
  // strata, breaks it (see SimOptions::require_stratified).
  options.require_stratified = false;
  runtime::Simulator sim(program, options);

  // Line n0 - n1 - n2, destination n0.
  std::vector<Tuple> facts;
  for (const auto& t : core::link_facts(core::line_topology(3))) facts.push_back(t);
  facts.emplace_back("own", std::vector<Value>{Value::addr("n0"), Value::addr("n0")});
  sim.inject_all(facts);
  // The n1->n0 link fails mid-run.
  sim.retract(Tuple("link", {Value::addr("n1"), Value::addr("n0"), Value::integer(1)}),
              fail_at);

  CtiRun result;
  sim.add_monitor([&result](const std::string&, const Tuple& t, double) {
    if (t.predicate() != "bestHopCost") return true;
    result.max_cost_seen = std::max(result.max_cost_seen, t.at(2).as_int());
    if (t.at(2).as_int() >= 10) {
      ++result.violations;
      return false;
    }
    return true;
  });
  sim.run();
  return result;
}

TEST(RuntimeCti, SoftDvConvergesBeforeFailure) {
  // No failure: costs stay at the true distances (1 and 2).
  auto result = run_soft_dv(kSoftDv, /*fail_at=*/1e9, /*rounds=*/10);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.max_cost_seen, 2);
}

TEST(RuntimeCti, CountToInfinityObservedAfterLinkFailure) {
  // E2 runtime flavor: after the failure the cost climbs past the monitor
  // threshold — the live count-to-infinity.
  auto result = run_soft_dv(kSoftDv, /*fail_at=*/4.6, /*rounds=*/40);
  EXPECT_GT(result.violations, 0u);
  EXPECT_GE(result.max_cost_seen, 10);
}

TEST(RuntimeCti, SplitHorizonStopsTheClimb) {
  auto result = run_soft_dv(kSoftDvSplitHorizon, /*fail_at=*/4.6, /*rounds=*/40);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_LE(result.max_cost_seen, 3);
}

}  // namespace
}  // namespace fvn
