// Tests for the extension features: direct-product algebras (totality
// failure), simulator event traces, the `case` tactic, and cross-protocol
// parameterized sweeps (distributed == centralized; parse round-trips).
#include <gtest/gtest.h>

#include "algebra/routing_algebra.hpp"
#include "core/protocols.hpp"
#include "ndlog/eval.hpp"
#include "prover/prover.hpp"
#include "runtime/simulator.hpp"
#include "translate/ndlog_to_logic.hpp"

namespace fvn {
namespace {

// ---------------------------------------------------------------------------
// Direct product
// ---------------------------------------------------------------------------

TEST(DirectProduct, TotalityFailsOnConflictingComponents) {
  // (1,5) vs (5,1): neither componentwise-dominates — incomparable.
  auto prod = algebra::direct_product(algebra::add_algebra(6, 2),
                                      algebra::add_algebra(6, 2));
  auto report = algebra::discharge(prod);
  EXPECT_FALSE(report.totality.holds) << report.to_string();
  EXPECT_NE(report.totality.counterexample.find("incomparable"), std::string::npos);
}

TEST(DirectProduct, StillMonotoneAndIsotone) {
  auto prod = algebra::direct_product(algebra::add_algebra(6, 2),
                                      algebra::add_algebra(6, 2));
  auto report = algebra::discharge(prod);
  EXPECT_TRUE(report.monotonicity.holds) << report.to_string();
  EXPECT_TRUE(report.isotonicity.holds) << report.to_string();
}

// ---------------------------------------------------------------------------
// Simulator traces
// ---------------------------------------------------------------------------

TEST(SimTrace, RecordsSendsInstallsAndExpiries) {
  auto program = ndlog::parse_program(R"(
    materialize(link, 1, infinity, keys(1,2)).
    materialize(reach, infinity, infinity, keys(1,2)).
    a1 reach(@D,S) :- link(@S,D,C).
  )");
  runtime::SimOptions options;
  options.record_trace = true;
  runtime::Simulator sim(program, options);
  sim.inject_all(core::link_facts(core::line_topology(2)));
  sim.run();
  const auto& trace = sim.trace();
  ASSERT_FALSE(trace.empty());
  bool saw_send = false, saw_install = false, saw_expire = false;
  double last_time = 0.0;
  for (const auto& e : trace) {
    EXPECT_GE(e.time, last_time);  // chronological
    last_time = e.time;
    switch (e.kind) {
      case runtime::TraceEntry::Kind::Send: saw_send = true; break;
      case runtime::TraceEntry::Kind::Install: saw_install = true; break;
      case runtime::TraceEntry::Kind::Expire: saw_expire = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_send);     // reach shipped to the other node
  EXPECT_TRUE(saw_install);
  EXPECT_TRUE(saw_expire);   // soft links time out
}

TEST(SimTrace, OffByDefault) {
  runtime::Simulator sim(core::reachable_program(), {});
  sim.inject_all(core::link_facts(core::line_topology(3)));
  sim.run();
  EXPECT_TRUE(sim.trace().empty());
}

// ---------------------------------------------------------------------------
// Case tactic
// ---------------------------------------------------------------------------

TEST(CaseTactic, SplitsAndBothBranchesClose) {
  using logic::Formula;
  using logic::LTerm;
  using logic::Sort;
  using logic::TypedVar;
  using prover::Command;
  // (A<=B => X) AND (A>B => X) => X   — needs a case split on A<=B.
  auto A = LTerm::var("A");
  auto B = LTerm::var("B");
  auto X = Formula::pred("x", {});
  auto le = Formula::cmp(ndlog::CmpOp::Le, A, B);
  auto gt = Formula::cmp(ndlog::CmpOp::Gt, A, B);
  auto stmt = Formula::forall(
      {TypedVar{"A", Sort::Metric}, TypedVar{"B", Sort::Metric}},
      Formula::implies(Formula::conj({Formula::implies(le, X), Formula::implies(gt, X)}),
                       X));
  logic::Theory empty_theory;
  prover::Prover prover(empty_theory);

  // Without the case split, grind alone cannot know which hypothesis fires.
  auto direct = prover.prove(logic::Theorem{"caseNeeded", stmt},
                             {Command::skolem(), Command::flatten()});
  EXPECT_FALSE(direct.proved);

  auto le_sk = Formula::cmp(ndlog::CmpOp::Le, LTerm::var("A!1"), LTerm::var("B!2"));
  auto result = prover.prove(
      logic::Theorem{"caseNeeded", stmt},
      {Command::skolem(), Command::flatten(), Command::case_split(le_sk),
       Command::grind()});
  EXPECT_TRUE(result.proved) << (result.open_goals.empty()
                                     ? result.failure_reason
                                     : result.open_goals.front().to_string());
}

// ---------------------------------------------------------------------------
// Join indexes
// ---------------------------------------------------------------------------

TEST(JoinIndex, LookupFindsMatchingTuples) {
  ndlog::Database db;
  using ndlog::Tuple;
  using ndlog::Value;
  db.insert(Tuple("link", {Value::addr("n0"), Value::addr("n1"), Value::integer(1)}));
  db.insert(Tuple("link", {Value::addr("n0"), Value::addr("n2"), Value::integer(2)}));
  db.insert(Tuple("link", {Value::addr("n1"), Value::addr("n2"), Value::integer(3)}));
  EXPECT_EQ(db.lookup("link", 0, Value::addr("n0")).size(), 2u);
  EXPECT_TRUE(db.has_index("link", 0));
  EXPECT_EQ(db.lookup("link", 1, Value::addr("n2")).size(), 2u);
  EXPECT_TRUE(db.lookup("link", 0, Value::addr("n9")).empty());
  // Index maintained across mutation.
  db.insert(Tuple("link", {Value::addr("n0"), Value::addr("n3"), Value::integer(4)}));
  EXPECT_EQ(db.lookup("link", 0, Value::addr("n0")).size(), 3u);
  db.erase(Tuple("link", {Value::addr("n0"), Value::addr("n1"), Value::integer(1)}));
  EXPECT_EQ(db.lookup("link", 0, Value::addr("n0")).size(), 2u);
}

TEST(JoinIndex, IndexedAndScanEvaluationAgree) {
  ndlog::Evaluator eval;
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    auto links = core::link_facts(core::random_topology(7, 5, seed));
    ndlog::EvalOptions indexed, scan;
    scan.use_index = false;
    auto a = eval.run(core::path_vector_program(), links, indexed);
    auto b = eval.run(core::path_vector_program(), links, scan);
    EXPECT_EQ(a.database.dump(), b.database.dump()) << seed;
    // The index materially reduces join work.
    EXPECT_LT(a.stats.join_probes, b.stats.join_probes) << seed;
  }
}

// ---------------------------------------------------------------------------
// Parameterized sweeps
// ---------------------------------------------------------------------------

class ProtocolRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolRoundTrip, ParsePrintReparseIsStable) {
  const std::vector<std::string> sources = {
      core::path_vector_source(),       core::distance_vector_source(),
      core::link_state_source(),        core::reachable_source(),
      core::policy_path_vector_source(), core::spanning_tree_source(),
  };
  const auto& src = sources[static_cast<std::size_t>(GetParam())];
  auto once = ndlog::parse_program(src);
  auto twice = ndlog::parse_program(once.to_string());
  EXPECT_EQ(once.to_string(), twice.to_string());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolRoundTrip, ::testing::Range(0, 6));

class DistributedAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributedAgreement, SimulatorMatchesEvaluatorOnReachability) {
  const std::uint64_t seed = GetParam();
  auto links = core::link_facts(core::random_topology(6, 4, seed));
  ndlog::Evaluator eval;
  auto central = eval.run(core::reachable_program(), links);
  runtime::Simulator sim(core::reachable_program(), {});
  sim.inject_all(links);
  auto stats = sim.run();
  ASSERT_TRUE(stats.quiesced);
  EXPECT_EQ(ndlog::sorted_strings(sim.merged_database().relation("reachable")),
            ndlog::sorted_strings(central.database.relation("reachable")))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedAgreement,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class TranslationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TranslationSweep, EveryProtocolTheoryHasAllDerivedPredicates) {
  const std::vector<ndlog::Program> programs = {
      core::path_vector_program(), core::link_state_program(),
      core::reachable_program(), core::policy_path_vector_program(),
      core::spanning_tree_program(),
  };
  const auto& program = programs[static_cast<std::size_t>(GetParam())];
  // count/sum-free programs translate fully.
  auto theory = translate::to_logic(program);
  for (const auto& pred : ndlog::derived_predicates(program)) {
    EXPECT_NE(theory.find_definition(pred), nullptr) << pred;
  }
  for (const auto& pred : ndlog::base_predicates(program)) {
    EXPECT_EQ(theory.find_definition(pred), nullptr) << pred;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, TranslationSweep, ::testing::Range(0, 5));

}  // namespace
}  // namespace fvn
