// Shard-parallel differential suite — the runtime half of the DESIGN.md §16
// certificate: for every shipped example, on both engines, at every worker
// count, the multi-worker evaluators (runtime::Simulator batches and
// net::Cluster node pools) reach fixpoints *byte-identical* to the serial
// paths — merged and per node — and uncertified programs transparently fall
// back to serial. A seeded fuzz loop widens the program family beyond the
// shipped examples (random DAG topologies x random monotone rulesets,
// including cross-shard aggregates pinned to the barrier by ND0024).
//
// Workloads mirror test_net_cluster.cpp: confluent by construction (unique
// argmins, acyclic where the protocol diverges on cycles). Parallel sim runs
// avoid loss/jitter — the RNG draw *order* differs between batched and
// serial delivery, so seeded-fault differentials live on the cluster side,
// where reliability masks the faults.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/protocols.hpp"
#include "ndlog/parser.hpp"
#include "net/cluster.hpp"
#include "runtime/simulator.hpp"

namespace fvn {
namespace {

using core::link_facts;
using ndlog::Tuple;
using ndlog::Value;
using runtime::EngineKind;

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

ndlog::Program example_program(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(FVN_SOURCE_DIR) / "examples" / "ndlog" / name;
  return ndlog::parse_program(slurp(path), name);
}

std::vector<std::string> example_names() {
  std::vector<std::string> names;
  const std::filesystem::path dir =
      std::filesystem::path(FVN_SOURCE_DIR) / "examples" / "ndlog";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".ndlog") {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// Confluent workload per example (same shapes as test_net_cluster.cpp).
std::vector<Tuple> example_workload(const std::string& name) {
  std::vector<Tuple> facts;
  const auto add_nodes_and_prefs = [&facts](const std::vector<core::Link>& links,
                                            bool with_nodes, bool with_pref) {
    std::set<std::string> names;
    for (const auto& l : links) {
      names.insert(l.src);
      names.insert(l.dst);
    }
    if (with_nodes) {
      for (const auto& n : names) {
        facts.emplace_back("node", std::vector<Value>{Value::addr(n)});
      }
    }
    for (const auto& t : link_facts(links)) facts.push_back(t);
    if (with_pref) {
      for (const auto& l : links) {
        facts.emplace_back("importPref",
                           std::vector<Value>{Value::addr(l.src), Value::addr(l.dst),
                                              Value::integer(100)});
      }
    }
  };
  if (name == "distance_vector.ndlog") {
    facts = link_facts({{"n0", "n1", 1},
                        {"n1", "n2", 2},
                        {"n2", "n3", 1},
                        {"n0", "n2", 5}});
  } else if (name == "link_state.ndlog") {
    add_nodes_and_prefs(core::line_topology(4, /*cost=*/400), false, false);
  } else if (name == "policy_path_vector.ndlog") {
    add_nodes_and_prefs(core::line_topology(4), true, true);
  } else if (name == "spanning_tree.ndlog") {
    add_nodes_and_prefs(core::line_topology(4), true, false);
  } else {
    add_nodes_and_prefs(core::line_topology(4), false, false);
  }
  return facts;
}

/// One simulator run: merged fixpoint, per-node fixpoints, and the stats the
/// parallel assertions key on.
struct SimRun {
  std::vector<std::string> merged;
  std::vector<std::vector<std::string>> per_node;  // in sim.nodes() order
  runtime::SimStats stats;
};

SimRun sim_run(const ndlog::Program& program, const std::vector<Tuple>& facts,
               EngineKind engine, std::size_t workers) {
  runtime::SimOptions options;
  options.engine = engine;
  options.workers = workers;
  runtime::Simulator sim(program, options);
  sim.inject_all(facts);
  SimRun run;
  run.stats = sim.run();
  EXPECT_TRUE(run.stats.quiesced);
  run.merged = sim.merged_database().dump();
  for (const auto& node : sim.nodes()) {
    run.per_node.push_back(sim.database(node).dump());
  }
  return run;
}

struct ClusterRun {
  std::vector<std::string> fixpoint;
  net::ClusterStats stats;
};

ClusterRun cluster_run(const ndlog::Program& program,
                       const std::vector<Tuple>& facts,
                       net::ClusterOptions options) {
  net::Cluster cluster(program, options);
  cluster.inject_all(facts);
  ClusterRun run;
  run.stats = cluster.run();
  run.fixpoint = cluster.merged_database().dump();
  return run;
}

constexpr std::size_t kWorkerCounts[] = {1, 2, 4};

bool certified_example(const std::string& name) {
  // Every shipped example certifies except distance_vector, which ND0015
  // (count-to-infinity growth on `hop`) knocks back to serial.
  return name != "distance_vector.ndlog";
}

// ---------------------------------------------------------------------------
// Simulator: every example x engine x worker count, bit-identical
// ---------------------------------------------------------------------------

TEST(ParallelCrossval, SimEveryExampleEveryWorkerCountMatchesSerial) {
  for (const auto& name : example_names()) {
    SCOPED_TRACE(name);
    const auto program = example_program(name);
    const auto facts = example_workload(name);
    for (const EngineKind engine : {EngineKind::Interpreter, EngineKind::Dataflow}) {
      SCOPED_TRACE(engine == EngineKind::Interpreter ? "interpreter" : "dataflow");
      const auto serial = sim_run(program, facts, engine, /*workers=*/0);
      EXPECT_FALSE(serial.stats.parallel_active);
      for (const std::size_t workers : kWorkerCounts) {
        SCOPED_TRACE("workers " + std::to_string(workers));
        const auto parallel = sim_run(program, facts, engine, workers);
        EXPECT_EQ(parallel.merged, serial.merged);
        EXPECT_EQ(parallel.per_node, serial.per_node);
        if (certified_example(name)) {
          EXPECT_TRUE(parallel.stats.parallel_active)
              << parallel.stats.parallel_fallback_reason;
          EXPECT_GT(parallel.stats.parallel_batches, 0u);
          EXPECT_GT(parallel.stats.parallel_rounds, 0u);
        } else {
          EXPECT_FALSE(parallel.stats.parallel_active);
          EXPECT_EQ(parallel.stats.parallel_batches, 0u);
        }
        // The parallel rounds replay the same derivations: protocol-visible
        // stats — not just the fixpoint — are untouched by the worker count.
        EXPECT_EQ(parallel.stats.tuples_derived, serial.stats.tuples_derived);
        EXPECT_EQ(parallel.stats.messages_sent, serial.stats.messages_sent);
        EXPECT_EQ(parallel.stats.events_processed, serial.stats.events_processed);
        EXPECT_EQ(parallel.stats.overwrites, serial.stats.overwrites);
      }
    }
  }
}

TEST(ParallelCrossval, UncertifiedProgramFallsBackWithTheAnalyzerVerdict) {
  const auto program = example_program("distance_vector.ndlog");
  const auto facts = example_workload("distance_vector.ndlog");
  const auto run = sim_run(program, facts, EngineKind::Interpreter, /*workers=*/4);
  EXPECT_FALSE(run.stats.parallel_active);
  EXPECT_NE(run.stats.parallel_fallback_reason.find("ND0015"), std::string::npos)
      << run.stats.parallel_fallback_reason;
}

// ---------------------------------------------------------------------------
// Cluster: per-node worker pools under real concurrency (and seeded faults)
// ---------------------------------------------------------------------------

TEST(ParallelCrossval, ClusterEveryExampleEveryWorkerCountMatchesSimulator) {
  for (const auto& name : example_names()) {
    SCOPED_TRACE(name);
    const auto program = example_program(name);
    const auto facts = example_workload(name);
    const auto expected =
        sim_run(program, facts, EngineKind::Interpreter, /*workers=*/0).merged;
    for (const EngineKind engine : {EngineKind::Interpreter, EngineKind::Dataflow}) {
      for (const std::size_t workers : kWorkerCounts) {
        SCOPED_TRACE("workers " + std::to_string(workers));
        net::ClusterOptions options;
        options.engine = engine;
        options.workers = workers;
        const auto run = cluster_run(program, facts, options);
        EXPECT_TRUE(run.stats.quiesced);
        EXPECT_EQ(run.fixpoint, expected);
        EXPECT_EQ(run.stats.parallel_active, certified_example(name))
            << run.stats.parallel_fallback_reason;
        if (certified_example(name)) {
          EXPECT_GT(run.stats.parallel_rounds, 0u);
        }
      }
    }
  }
}

TEST(ParallelCrossval, ClusterSeededLossStillMatchesAtEveryWorkerCount) {
  for (const auto& name : example_names()) {
    SCOPED_TRACE(name);
    const auto program = example_program(name);
    const auto facts = example_workload(name);
    const auto expected =
        sim_run(program, facts, EngineKind::Interpreter, /*workers=*/0).merged;
    for (const std::uint64_t seed : {3ull, 17ull, 40ull}) {
      SCOPED_TRACE("seed " + std::to_string(seed));
      net::ClusterOptions options;
      options.workers = 4;
      options.faults.drop_rate = 0.2;
      options.faults.seed = seed;
      const auto run = cluster_run(program, facts, options);
      EXPECT_TRUE(run.stats.quiesced);
      EXPECT_EQ(run.fixpoint, expected);
      // Exactly-once delivery holds with worker pools in the path too.
      EXPECT_EQ(run.stats.messages_received, run.stats.messages_sent);
    }
  }
}

// ---------------------------------------------------------------------------
// ND0023 / ND0024 witnesses executed at runtime
// ---------------------------------------------------------------------------

/// The ND0024 witness from the analyzer suite: reach shards by destination,
/// fanin counts across shards and is pinned to the serial barrier. The
/// fixpoint must not care.
TEST(ParallelCrossval, BarrierPinnedAggregateMatchesSerial) {
  const auto program = ndlog::parse_program(
      "b1 reach(@S,D) :- link(@S,D,C).\n"
      "b2 reach(@S,D) :- link(@S,Z,C), reach(@Z,D).\n"
      "b3 fanin(@S,count<D>) :- reach(@S,D).\n");
  const auto facts = example_workload("reachable.ndlog");
  for (const EngineKind engine : {EngineKind::Interpreter, EngineKind::Dataflow}) {
    const auto serial = sim_run(program, facts, engine, /*workers=*/0);
    for (const std::size_t workers : kWorkerCounts) {
      const auto parallel = sim_run(program, facts, engine, workers);
      EXPECT_TRUE(parallel.stats.parallel_active)
          << parallel.stats.parallel_fallback_reason;
      EXPECT_EQ(parallel.merged, serial.merged);
    }
  }
}

/// spanning_tree carries the shipped ND0023 witness (st4's misaligned root
/// probe degrades its group to location sharding) and two ND0024 barriers;
/// the matrix test above already runs it, this pins the cluster side with
/// more workers than nodes.
TEST(ParallelCrossval, MisalignedGroupRunsLocationShardedOnTheCluster) {
  const auto program = example_program("spanning_tree.ndlog");
  const auto facts = example_workload("spanning_tree.ndlog");
  const auto expected =
      sim_run(program, facts, EngineKind::Interpreter, /*workers=*/0).merged;
  net::ClusterOptions options;
  options.workers = 8;
  const auto run = cluster_run(program, facts, options);
  EXPECT_TRUE(run.stats.quiesced);
  EXPECT_TRUE(run.stats.parallel_active) << run.stats.parallel_fallback_reason;
  EXPECT_EQ(run.fixpoint, expected);
}

// ---------------------------------------------------------------------------
// Seeded fuzz: random DAGs x random monotone rulesets
// ---------------------------------------------------------------------------

/// Conservative generator: acyclic link topologies (edges only i -> j, i < j,
/// unique costs) and rules drawn from monotone templates (closure, two-hop
/// join, re-join with the base relation, cross-shard count). Every generated
/// program is confluent, so serial and parallel fixpoints must agree exactly
/// whether or not the certificate admits sharding.
ndlog::Program fuzz_program(std::mt19937_64& rng) {
  std::string src =
      "f1 reach(@S,D) :- link(@S,D,C).\n"
      "f2 reach(@S,D) :- link(@S,Z,C), reach(@Z,D).\n";
  if (rng() % 2 == 0) {
    src += "f3 direct(@S,D) :- reach(@S,D), link(@S,D,C).\n";
  }
  if (rng() % 2 == 0) {
    src += "f4 hop2(@S,D) :- link(@S,Z,C), link(@Z,D,C2).\n";
  }
  if (rng() % 2 == 0) {
    src += "f5 fanin(@S,count<D>) :- reach(@S,D).\n";
  }
  return ndlog::parse_program(src, "fuzz");
}

std::vector<Tuple> fuzz_topology(std::mt19937_64& rng) {
  const std::size_t n = 4 + rng() % 3;  // 4..6 nodes
  std::vector<core::Link> links;
  long cost = 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng() % 3 == 0) continue;  // keep ~2/3 of the forward edges
      links.push_back({"n" + std::to_string(i), "n" + std::to_string(j), cost++});
    }
  }
  if (links.empty()) links.push_back({"n0", "n1", 1});
  return link_facts(links);
}

TEST(ParallelCrossval, FuzzedMonotoneProgramsMatchSerialAtEveryWorkerCount) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);
    const auto program = fuzz_program(rng);
    const auto facts = fuzz_topology(rng);
    for (const EngineKind engine : {EngineKind::Interpreter, EngineKind::Dataflow}) {
      const auto serial = sim_run(program, facts, engine, /*workers=*/0);
      for (const std::size_t workers : {2ul, 4ul}) {
        const auto parallel = sim_run(program, facts, engine, workers);
        EXPECT_EQ(parallel.merged, serial.merged);
        EXPECT_EQ(parallel.per_node, serial.per_node);
        // No stats check here: batched rounds legitimately install fewer
        // *intermediate* aggregate outputs (a count grows in larger steps per
        // round), so tuples_derived is round-structure-dependent for the
        // fuzzed aggregate programs. The fixpoint is the invariant.
      }
    }
  }
}

}  // namespace
}  // namespace fvn
