// Unit tests for the NDlog lexer/parser: the paper's concrete syntax, error
// positions, materialize declarations, aggregates, negation, facts.
#include <gtest/gtest.h>

#include "ndlog/parser.hpp"

namespace fvn::ndlog {
namespace {

TEST(Lexer, TokenKinds) {
  auto tokens = tokenize("r1 path(@S,D) :- link(@S,D,C), C >= 2.5, X != \"abc\".");
  ASSERT_GT(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::Ident);
  EXPECT_EQ(tokens[0].text, "r1");
  EXPECT_EQ(tokens[1].kind, TokenKind::Ident);  // path
  EXPECT_EQ(tokens[2].kind, TokenKind::LParen);
  EXPECT_EQ(tokens[3].kind, TokenKind::At);
  EXPECT_EQ(tokens[4].kind, TokenKind::Variable);
}

TEST(Lexer, NumbersIntAndDouble) {
  auto tokens = tokenize("42 2.75");
  EXPECT_TRUE(tokens[0].number_is_int);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_FALSE(tokens[1].number_is_int);
  EXPECT_DOUBLE_EQ(tokens[1].number, 2.75);
}

TEST(Lexer, CommentsSkipped) {
  auto tokens = tokenize("a // comment\n/* block\ncomment */ b");
  ASSERT_EQ(tokens.size(), 3u);  // a, b, End
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, StringEscapes) {
  auto tokens = tokenize(R"("a\nb")");
  EXPECT_EQ(tokens[0].text, "a\nb");
}

TEST(Lexer, ErrorCarriesPosition) {
  try {
    tokenize("abc\n  #");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 3);
  }
}

TEST(Parser, PaperRuleR2RoundTrips) {
  auto program = parse_program(
      "r2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), C=C1+C2, "
      "P=f_concatPath(S,P2), f_inPath(P2,S)=false.");
  ASSERT_EQ(program.rules.size(), 1u);
  const Rule& r = program.rules[0];
  EXPECT_EQ(r.name, "r2");
  EXPECT_EQ(r.head.predicate, "path");
  EXPECT_EQ(r.head.loc_index, 0);
  EXPECT_EQ(r.body.size(), 5u);
  EXPECT_EQ(r.to_string(),
            "r2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), C=(C1+C2), "
            "P=f_concatPath(S,P2), f_inPath(P2,S)=false.");
}

TEST(Parser, AggregateHead) {
  auto program = parse_program("r3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).");
  const Rule& r = program.rules[0];
  ASSERT_TRUE(r.head.has_aggregate());
  const HeadArg& agg = r.head.args[2];
  EXPECT_TRUE(agg.is_agg());
  EXPECT_EQ(*agg.agg, AggKind::Min);
  EXPECT_EQ(agg.agg_var, "C");
}

TEST(Parser, AllAggregateKinds) {
  for (const char* src : {"a(@X,min<Y>) :- b(@X,Y).", "a(@X,max<Y>) :- b(@X,Y).",
                          "a(@X,count<Y>) :- b(@X,Y).", "a(@X,sum<Y>) :- b(@X,Y)."}) {
    EXPECT_NO_THROW(parse_program(src)) << src;
  }
}

TEST(Parser, NegatedAtom) {
  auto program = parse_program("a(@X) :- b(@X,Y), !c(@X,Y).");
  const auto* ba = std::get_if<BodyAtom>(&program.rules[0].body[1]);
  ASSERT_NE(ba, nullptr);
  EXPECT_TRUE(ba->negated);
}

TEST(Parser, MaterializeDeclaration) {
  auto program = parse_program("materialize(link, 120, 500, keys(1,2)).");
  ASSERT_EQ(program.materializations.size(), 1u);
  const Materialize& m = program.materializations[0];
  EXPECT_EQ(m.predicate, "link");
  ASSERT_TRUE(m.lifetime_seconds.has_value());
  EXPECT_DOUBLE_EQ(*m.lifetime_seconds, 120.0);
  ASSERT_TRUE(m.max_size.has_value());
  EXPECT_EQ(*m.max_size, 500u);
  EXPECT_EQ(m.key_fields, (std::vector<std::size_t>{1, 2}));
}

TEST(Parser, MaterializeInfinity) {
  auto program = parse_program("materialize(p, infinity, infinity, keys(1)).");
  EXPECT_FALSE(program.materializations[0].lifetime_seconds.has_value());
  EXPECT_FALSE(program.materializations[0].max_size.has_value());
}

TEST(Parser, FactParsing) {
  Tuple t = parse_fact("link(@n1,n2,3)");
  EXPECT_EQ(t.predicate(), "link");
  EXPECT_EQ(t.at(0).as_addr(), "n1");
  EXPECT_EQ(t.at(1).as_addr(), "n2");
  EXPECT_EQ(t.at(2).as_int(), 3);
}

TEST(Parser, FactWithVariableRejected) {
  EXPECT_THROW(parse_fact("link(@n1,X,3)"), ParseError);
}

TEST(Parser, GroundFactRuleInProgram) {
  auto program = parse_program("link(@n1,n2,1).");
  ASSERT_EQ(program.rules.size(), 1u);
  EXPECT_TRUE(program.rules[0].is_fact());
}

TEST(Parser, ArithmeticPrecedence) {
  auto program = parse_program("a(@X,Y) :- b(@X,Z), Y = Z + 2 * 3.");
  const auto* cmp = std::get_if<Comparison>(&program.rules[0].body[1]);
  ASSERT_NE(cmp, nullptr);
  // Renders as (Z+(2*3)): multiplication binds tighter.
  EXPECT_EQ(cmp->rhs->to_string(), "(Z+(2*3))");
}

TEST(Parser, ListLiteralConstantFolded) {
  auto program = parse_program("a(@X,Y) :- b(@X), Y = [1,2,3].");
  const auto* cmp = std::get_if<Comparison>(&program.rules[0].body[1]);
  ASSERT_NE(cmp, nullptr);
  EXPECT_EQ(cmp->rhs->kind, Term::Kind::Const);
  EXPECT_EQ(cmp->rhs->constant.as_list().size(), 3u);
}

TEST(Parser, ListLiteralWithVariablesBecomesFList) {
  auto program = parse_program("a(@X,Y) :- b(@X,Z), Y = [X,Z].");
  const auto* cmp = std::get_if<Comparison>(&program.rules[0].body[1]);
  EXPECT_EQ(cmp->rhs->kind, Term::Kind::Func);
  EXPECT_EQ(cmp->rhs->name, "f_list");
}

TEST(Parser, UnaryMinus) {
  auto program = parse_program("a(@X,Y) :- b(@X), Y = -5.");
  const auto* cmp = std::get_if<Comparison>(&program.rules[0].body[1]);
  EXPECT_EQ(cmp->rhs->constant.as_int(), -5);
}

TEST(Parser, BooleanLiterals) {
  auto program = parse_program("a(@X) :- b(@X,Y), Y = true, f_inPath(Y,X) = false.");
  EXPECT_EQ(program.rules[0].body.size(), 3u);
}

TEST(Parser, MissingPeriodIsError) {
  EXPECT_THROW(parse_program("a(@X) :- b(@X)"), ParseError);
}

TEST(Parser, DanglingCommaIsError) {
  EXPECT_THROW(parse_program("a(@X) :- b(@X), ."), ParseError);
}

TEST(Parser, ProgramToStringReparses) {
  const char* source = R"(
    materialize(link, infinity, infinity, keys(1,2)).
    r1 path(@S,D,P,C) :- link(@S,D,C), P=f_init(S,D).
    r3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
  )";
  auto program = parse_program(source);
  auto reparsed = parse_program(program.to_string());
  EXPECT_EQ(program.to_string(), reparsed.to_string());
}

// ---------------------------------------------------------------------------
// Every error path must carry a real source position (never line 0 / the
// end-of-input fallback), so diagnostics built from ParseError locate.
// ---------------------------------------------------------------------------

/// Expect a ParseError from parsing `source` and return its position.
std::pair<int, int> error_position(const std::string& source) {
  try {
    parse_program(source);
  } catch (const ParseError& e) {
    EXPECT_GT(e.line(), 0) << e.what();
    EXPECT_GT(e.column(), 0) << e.what();
    return {e.line(), e.column()};
  }
  ADD_FAILURE() << "expected ParseError from: " << source;
  return {0, 0};
}

TEST(ParserSpans, UnterminatedBlockCommentPointsAtOpening) {
  const auto [line, col] = error_position("a(@X) :- b(@X).\n  /* never closed");
  EXPECT_EQ(line, 2);
  EXPECT_EQ(col, 3);
}

TEST(ParserSpans, UnterminatedStringPointsAtOpeningQuote) {
  const auto [line, col] = error_position("f(@n1, \"oops).\n");
  EXPECT_EQ(line, 1);
  EXPECT_EQ(col, 8);
}

TEST(ParserSpans, BadIntegerLiteralPointsAtToken) {
  // Exceeds int64: from_chars reports out-of-range.
  const auto [line, col] =
      error_position("f(@n1,\n   99999999999999999999999).\n");
  EXPECT_EQ(line, 2);
  EXPECT_EQ(col, 4);
}

TEST(ParserSpans, NonConstantFactArgumentPointsAtAtom) {
  try {
    parse_fact("link(@n1,X,3)");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 1);  // the atom, not the end of input
  }
}

}  // namespace
}  // namespace fvn::ndlog
