// Translator tests: arc 4 (NDlog → logic, incl. aggregate min-semantics and
// negation), arc 3 (components → NDlog, the paper's §3.2.2 algorithm and the
// Figure-3 tc example), the soft-state → hard-state rewrite of §4.2, and
// property-preservation checks through the finite-model evaluator (E4).
#include <gtest/gtest.h>

#include "core/protocols.hpp"
#include "logic/finite_model.hpp"
#include "ndlog/eval.hpp"
#include "translate/components.hpp"
#include "translate/ndlog_to_logic.hpp"
#include "translate/softstate.hpp"

namespace fvn {
namespace {

using logic::FiniteModel;
using logic::Formula;
using logic::LTerm;
using ndlog::Evaluator;
using ndlog::Tuple;
using ndlog::Value;

TEST(NdlogToLogic, SimpleRuleBecomesSingleClause) {
  auto program = ndlog::parse_program("a(@X,Y) :- b(@X,Y), Y > 3.");
  auto def = translate::predicate_to_inductive(program, "a");
  ASSERT_EQ(def.clauses.size(), 1u);
  EXPECT_EQ(def.params.size(), 2u);
  EXPECT_EQ(def.params[0].name, "X");
  const std::string text = def.to_string();
  EXPECT_NE(text.find("b(X,Y)"), std::string::npos) << text;
  EXPECT_NE(text.find("Y>3"), std::string::npos) << text;
}

TEST(NdlogToLogic, ExistentialsForNonHeadVariables) {
  auto program = ndlog::parse_program("a(@X) :- b(@X,Y,Z).");
  auto def = translate::predicate_to_inductive(program, "a");
  const std::string text = def.to_string();
  EXPECT_NE(text.find("EXISTS"), std::string::npos) << text;
  EXPECT_NE(text.find("Y"), std::string::npos) << text;
  EXPECT_NE(text.find("Z"), std::string::npos) << text;
}

TEST(NdlogToLogic, NegationBecomesNot) {
  auto program = ndlog::parse_program("a(@X) :- b(@X,Y), !c(@X,Y).");
  auto def = translate::predicate_to_inductive(program, "a");
  EXPECT_NE(def.to_string().find("NOT c(X,Y)"), std::string::npos) << def.to_string();
}

TEST(NdlogToLogic, MinAggregateGetsOptimalitySemantics) {
  auto theory = translate::to_logic(core::path_vector_program());
  const auto* def = theory.find_definition("bestPathCost");
  ASSERT_NE(def, nullptr);
  const std::string text = def->to_string();
  EXPECT_NE(text.find("FORALL"), std::string::npos) << text;
  EXPECT_NE(text.find("C<="), std::string::npos) << text;
  EXPECT_NE(text.find("EXISTS"), std::string::npos) << text;
}

TEST(NdlogToLogic, CountAggregateRejected) {
  auto program = ndlog::parse_program("a(@X,count<Y>) :- b(@X,Y).");
  EXPECT_THROW(translate::predicate_to_inductive(program, "a"),
               translate::TranslateError);
}

TEST(NdlogToLogic, TranslationAgreesWithEvaluationOnFiniteModels) {
  // Soundness of arc 4 (E4 flavor): for every derived tuple, the inductive
  // definition's body is satisfied; for absent tuples over the domain it is
  // not (checked for the non-recursive reachable program's base case).
  auto program = core::path_vector_program();
  auto theory = translate::to_logic(program);
  Evaluator eval;
  auto db = eval.run(program, core::link_facts(core::random_topology(5, 3, 21))).database;
  FiniteModel model;
  model.load_database(db);

  const auto* def = theory.find_definition("path");
  ASSERT_NE(def, nullptr);
  std::size_t checked = 0;
  for (const auto& t : db.relation("path")) {
    std::map<std::string, Value> env;
    for (std::size_t i = 0; i < def->params.size(); ++i) {
      env[def->params[i].name] = t.at(i);
    }
    EXPECT_TRUE(model.eval(*def->body(), env)) << t.to_string();
    if (++checked >= 25) break;  // bounded: quantifier enumeration is costly
  }
  EXPECT_GT(checked, 0u);
}

TEST(NdlogToLogic, PrettyPrintedTheoryLooksLikePvs) {
  auto theory = translate::to_logic(core::path_vector_program());
  const std::string text = theory.to_string();
  EXPECT_NE(text.find("INDUCTIVE bool"), std::string::npos);
  EXPECT_NE(text.find("path_vector: THEORY"), std::string::npos);
  EXPECT_NE(text.find("END path_vector"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Arc 3: component → NDlog (§3.2.2)
// ---------------------------------------------------------------------------

TEST(Components, TcGeneratesThePapersThreeRules) {
  auto program = translate::generate_ndlog(translate::example_tc());
  ASSERT_EQ(program.rules.size(), 3u);
  // t3's rule joins the two internal outputs — the §3.2.2 shape:
  // t3_out(O3) :- t1_out(O1), t2_out(O2), C3(O1,O2,O3).
  const auto& t3 = program.rules[2];
  EXPECT_EQ(t3.head.predicate, "t3_out");
  std::vector<std::string> body_preds;
  for (const auto& e : t3.body) {
    if (const auto* ba = std::get_if<ndlog::BodyAtom>(&e)) {
      body_preds.push_back(ba->atom.predicate);
    }
  }
  EXPECT_EQ(body_preds, (std::vector<std::string>{"t1_out", "t2_out"}));
}

TEST(Components, TcClassifiesPorts) {
  auto tc = translate::example_tc();
  EXPECT_EQ(tc.external_input_predicates(),
            (std::set<std::string>{"t1_in", "t2_in"}));
  EXPECT_EQ(tc.external_output_predicates(), (std::set<std::string>{"t3_out"}));
  EXPECT_EQ(tc.internal_predicates(), (std::set<std::string>{"t1_out", "t2_out"}));
}

TEST(Components, GeneratedNdlogComputesTheComposition) {
  auto program = translate::generate_ndlog(translate::example_tc());
  Evaluator eval;
  std::vector<Tuple> facts = {
      Tuple("t1_in", {Value::integer(3)}),   // O1 = 4
      Tuple("t2_in", {Value::integer(5)}),   // O2 = 10
  };
  auto db = eval.run(program, facts).database;
  ASSERT_EQ(db.size("t3_out"), 1u);
  EXPECT_EQ(db.relation("t3_out").begin()->at(0).as_int(), 14);  // O1 <= O2 holds
}

TEST(Components, GuardFiltersOutput) {
  auto program = translate::generate_ndlog(translate::example_tc());
  Evaluator eval;
  // O1 = 21, O2 = 4: the O1 <= O2 guard of t3 fails, no output.
  std::vector<Tuple> facts = {
      Tuple("t1_in", {Value::integer(20)}),
      Tuple("t2_in", {Value::integer(2)}),
  };
  auto db = eval.run(program, facts).database;
  EXPECT_EQ(db.size("t3_out"), 0u);
}

TEST(Components, PropertyPreservation_TcLogicMatchesNdlogOnRandomInputs) {
  // E4's core check: the generated NDlog program and the generated logical
  // specification agree — tc(I1,I2,O3) holds in the finite model iff
  // t3_out(O3) is derived from t1_in(I1), t2_in(I2).
  auto tc = translate::example_tc();
  auto program = translate::generate_ndlog(tc);
  auto theory = translate::generate_logic(tc);
  const auto* top = theory.find_definition("tc");
  ASSERT_NE(top, nullptr);

  Evaluator eval;
  for (std::int64_t i1 = 0; i1 <= 4; ++i1) {
    for (std::int64_t i2 = 0; i2 <= 4; ++i2) {
      std::vector<Tuple> facts = {
          Tuple("t1_in", {Value::integer(i1)}),
          Tuple("t2_in", {Value::integer(i2)}),
      };
      auto db = eval.run(program, facts).database;

      // Build a model interpreting the part predicates by their defining
      // constraints over the harvested numeric domain.
      FiniteModel model;
      model.load_database(db);
      model.add_metric_range(0, 20);
      for (std::int64_t o3 = 0; o3 <= 20; ++o3) {
        std::map<std::string, Value> env = {
            {"I1", Value::integer(i1)},
            {"I2", Value::integer(i2)},
            {"O3", Value::integer(o3)},
        };
        // Interpret the composite body directly: substitute part definitions
        // (they are constraint-only, so evaluate their bodies).
        // tc(I1,I2,O3) = EXISTS O1,O2: C1 AND C2 AND C3.
        std::vector<logic::FormulaPtr> parts;
        for (const auto& def : theory.definitions) {
          if (def.pred_name == "tc") continue;
          parts.push_back(def.body());
        }
        auto combined = Formula::exists(
            {logic::TypedVar{"O1", logic::Sort::Metric},
             logic::TypedVar{"O2", logic::Sort::Metric}},
            Formula::conj(std::move(parts)));
        const bool logic_says = model.eval(*combined, env);
        const bool ndlog_says = db.contains(Tuple("t3_out", {Value::integer(o3)}));
        EXPECT_EQ(logic_says, ndlog_says)
            << "I1=" << i1 << " I2=" << i2 << " O3=" << o3;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Soft-state rewrite (§4.2)
// ---------------------------------------------------------------------------

TEST(SoftState, RewriteAddsTimestampAttributes) {
  auto program = ndlog::parse_program(R"(
    materialize(link, 10, infinity, keys(1,2)).
    materialize(reach, 20, infinity, keys(1,2)).
    t1 reach(@S,D) :- link(@S,D,C).
    t2 reach(@S,D) :- link(@S,Z,C), reach(@Z,D).
  )",
                                      "soft_reach");
  auto rewrite = translate::soft_to_hard(program);
  EXPECT_EQ(rewrite.predicates_rewritten, 2u);
  EXPECT_GT(rewrite.extra_attributes, 0u);
  EXPECT_GT(rewrite.extra_body_elements, 0u);
  // Every rewritten rule head gained two attributes.
  for (const auto& rule : rewrite.program.rules) {
    if (rule.head.predicate == "reach") {
      EXPECT_EQ(rule.head.args.size(), 4u) << rule.to_string();
    }
  }
  // The rewritten program is still analyzable.
  EXPECT_NO_THROW(ndlog::analyze(rewrite.program));
}

TEST(SoftState, RewrittenProgramDerivesSameCoreFacts) {
  auto program = ndlog::parse_program(R"(
    materialize(link, 10, infinity, keys(1,2)).
    t1 reach(@S,D) :- link(@S,D,C).
    t2 reach(@S,D) :- link(@S,Z,C), reach(@Z,D).
  )",
                                      "soft_reach");
  auto rewrite = translate::soft_to_hard(program);
  Evaluator eval;
  auto base = core::link_facts(core::line_topology(4));
  auto plain = eval.run(core::reachable_program(), base).database;
  auto hard = eval.run(rewrite.program, translate::stamp_facts(program, base, 0.0)).database;
  // Projecting away the (Ts, Lt) attributes yields the same reach facts.
  std::set<std::string> projected;
  for (const auto& t : hard.relation("reach")) {
    projected.insert(t.at(0).to_string() + "->" + t.at(1).to_string());
  }
  std::set<std::string> expected;
  for (const auto& t : plain.relation("reachable")) {
    expected.insert(t.at(0).to_string() + "->" + t.at(1).to_string());
  }
  EXPECT_EQ(projected, expected);
}

TEST(SoftState, ExpiredFactsDoNotSupportDerivations) {
  // With a base tuple stamped far in the past, the liveness constraint
  // Ts + Lt >= head-derivation-time blocks joint derivations with fresh data.
  auto program = ndlog::parse_program(R"(
    materialize(a, 5, infinity, keys(1)).
    materialize(b, 5, infinity, keys(1)).
    j1 both(@X) :- a(@X), b(@X).
  )",
                                      "join");
  auto rewrite = translate::soft_to_hard(program);
  Evaluator eval;
  std::vector<Tuple> facts;
  // a stamped at t=0 (alive until 5), b stamped at t=100: the join's head
  // timestamp is 100, but a expired at 5.
  for (const auto& t : translate::stamp_facts(
           program, {Tuple("a", {Value::addr("n0")})}, 0.0)) {
    facts.push_back(t);
  }
  for (const auto& t : translate::stamp_facts(
           program, {Tuple("b", {Value::addr("n0")})}, 100.0)) {
    facts.push_back(t);
  }
  auto db = eval.run(rewrite.program, facts).database;
  EXPECT_EQ(db.size("both"), 0u);
  // Stamped contemporaneously, the join succeeds.
  auto fresh = translate::stamp_facts(
      program, {Tuple("a", {Value::addr("n0")}), Tuple("b", {Value::addr("n0")})}, 50.0);
  auto db2 = eval.run(rewrite.program, fresh).database;
  EXPECT_EQ(db2.size("both"), 1u);
}

TEST(SoftState, HardPredicatesUntouched) {
  auto program = ndlog::parse_program(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    t1 reach(@S,D) :- link(@S,D,C).
  )",
                                      "hard");
  auto rewrite = translate::soft_to_hard(program);
  EXPECT_EQ(rewrite.predicates_rewritten, 0u);
  EXPECT_EQ(rewrite.extra_attributes, 0u);
  EXPECT_EQ(rewrite.program.rules[0].head.args.size(), 2u);
}

}  // namespace
}  // namespace fvn
