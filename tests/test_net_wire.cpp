// fvn::net wire-format tests: exact round trips (including the edge cases the
// codec exists for — empty tuples, max arity, INT64_MIN, embedded NULs,
// non-ASCII bytes, multi-tuple batches), typed rejection of truncated/corrupt
// input, and a golden hex dump (tests/golden/wire/frames.hex) pinning
// version-2 byte layout.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>

#include "net/wire.hpp"

namespace fvn::net {
namespace {

using ndlog::Tuple;
using ndlog::Value;

Tuple roundtrip(const Tuple& t) { return decode_tuple(encode_tuple(t)); }
Value roundtrip(const Value& v) { return decode_value(encode_value(v)); }

Frame make_ack(std::uint64_t seq, std::string src, std::string dst) {
  Frame ack;
  ack.kind = Frame::Kind::Ack;
  ack.seq = seq;
  ack.src = std::move(src);
  ack.dst = std::move(dst);
  return ack;
}

WireErrorKind kind_of(const std::string& bytes) {
  try {
    (void)decode_frame(bytes);
  } catch (const WireError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "decode_frame accepted " << to_hex(bytes);
  return WireErrorKind::Truncated;
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(WireValue, ScalarsRoundTrip) {
  EXPECT_EQ(roundtrip(Value::nil()), Value::nil());
  EXPECT_EQ(roundtrip(Value::boolean(true)), Value::boolean(true));
  EXPECT_EQ(roundtrip(Value::boolean(false)), Value::boolean(false));
  EXPECT_EQ(roundtrip(Value::integer(0)), Value::integer(0));
  EXPECT_EQ(roundtrip(Value::integer(-1)), Value::integer(-1));
  EXPECT_EQ(roundtrip(Value::integer(300)), Value::integer(300));
  EXPECT_EQ(roundtrip(Value::str("hello")), Value::str("hello"));
  EXPECT_EQ(roundtrip(Value::addr("n0")), Value::addr("n0"));
}

TEST(WireValue, IntExtremesRoundTrip) {
  for (const std::int64_t v :
       {std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::min() + 1, std::int64_t{-1},
        std::int64_t{0}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::max() - 1,
        std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(roundtrip(Value::integer(v)).as_int(), v) << v;
  }
}

TEST(WireValue, DoublesRoundTripBitExact) {
  for (const double d : {0.0, -0.0, 1.5, -2.25, 1e300, -1e-300,
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::denorm_min()}) {
    const std::string bytes = encode_value(Value::real(d));
    // Bit-exact: re-encoding the decoded value reproduces the bytes (this
    // also covers -0.0, which compares == to 0.0 but has different bits).
    EXPECT_EQ(encode_value(decode_value(bytes)), bytes) << d;
  }
  // NaN != NaN, so compare encodings, not values.
  const std::string nan_bytes =
      encode_value(Value::real(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(encode_value(decode_value(nan_bytes)), nan_bytes);
}

TEST(WireValue, StringsWithEmbeddedNulAndNonAscii) {
  const std::string nul_str = std::string("a\0b", 3);
  EXPECT_EQ(roundtrip(Value::str(nul_str)).as_str(), nul_str);
  const std::string all_nul(5, '\0');
  EXPECT_EQ(roundtrip(Value::str(all_nul)).as_str(), all_nul);
  const std::string utf8 = "caf\xC3\xA9 \xE2\x88\x80x";  // café ∀x
  EXPECT_EQ(roundtrip(Value::str(utf8)).as_str(), utf8);
  std::string high_bytes;
  for (int b = 128; b < 256; ++b) high_bytes.push_back(static_cast<char>(b));
  EXPECT_EQ(roundtrip(Value::str(high_bytes)).as_str(), high_bytes);
  EXPECT_EQ(roundtrip(Value::addr(nul_str)).as_addr(), nul_str);
  EXPECT_EQ(roundtrip(Value::str("")).as_str(), "");
}

TEST(WireValue, NestedListsRoundTrip) {
  const Value nested = Value::list(
      {Value::integer(1),
       Value::list({Value::str("x"), Value::list({}), Value::boolean(true)}),
       Value::nil()});
  EXPECT_EQ(roundtrip(nested), nested);

  // Exactly kMaxDepth nesting encodes and decodes.
  Value deep = Value::integer(7);
  for (std::size_t i = 0; i < kMaxDepth; ++i) deep = Value::list({deep});
  EXPECT_EQ(roundtrip(deep), deep);
}

TEST(WireTuple, EmptyTupleRoundTrips) {
  const Tuple empty("unit", {});
  EXPECT_EQ(roundtrip(empty), empty);
  EXPECT_EQ(roundtrip(Tuple("", {})), Tuple("", {}));  // empty predicate too
}

TEST(WireTuple, MaxArityTupleRoundTrips) {
  std::vector<Value> values;
  for (std::int64_t i = 0; i < 1000; ++i) values.push_back(Value::integer(i - 500));
  const Tuple wide("wide", values);
  EXPECT_EQ(roundtrip(wide), wide);
}

TEST(WireTuple, MixedKindsRoundTrip) {
  const Tuple t("route",
                {Value::addr("n0"), Value::addr("n1"), Value::integer(-42),
                 Value::real(3.5), Value::str(std::string("\0\xFF", 2)),
                 Value::list({Value::addr("n0"), Value::addr("n1")}),
                 Value::boolean(false), Value::nil()});
  EXPECT_EQ(roundtrip(t), t);
}

TEST(WireFrame, DataAndAckRoundTrip) {
  Frame data;
  data.kind = Frame::Kind::Data;
  data.seq = 12345678;
  data.src = "n0";
  data.dst = "n1";
  data.tuple = Tuple("hop", {Value::addr("n1"), Value::addr("n2"), Value::integer(3)});
  EXPECT_EQ(decode_frame(encode_frame(data)), data);

  Frame ack = make_ack(12345678, "n1", "n0");
  EXPECT_EQ(decode_frame(encode_frame(ack)), ack);
  // Acks carry no tuples: the encoding must not change with the payload fields.
  Frame ack2 = ack;
  ack2.tuple = data.tuple;
  ack2.tuples = {data.tuple};
  EXPECT_EQ(encode_frame(ack2), encode_frame(ack));
}

TEST(WireFrame, DataBatchRoundTrips) {
  Frame batch;
  batch.kind = Frame::Kind::DataBatch;
  batch.seq = 42;
  batch.src = "n0";
  batch.dst = "n1";
  batch.tuples = {
      Tuple("hop", {Value::addr("n1"), Value::addr("n2"), Value::integer(3)}),
      Tuple("path", {Value::addr("n1"), Value::addr("n3"),
                     Value::list({Value::addr("n0"), Value::addr("n1")})}),
      Tuple("unit", {}),
  };
  EXPECT_EQ(decode_frame(encode_frame(batch)), batch);
  EXPECT_EQ(encode_frame(decode_frame(encode_frame(batch))), encode_frame(batch));

  // A batch of zero tuples is legal (a flush with nothing buffered never
  // happens, but the codec is defined for it).
  Frame empty = batch;
  empty.tuples.clear();
  EXPECT_EQ(decode_frame(encode_frame(empty)), empty);

  // The single-tuple Data frame and a one-tuple batch are distinct kinds on
  // the wire, both accepted.
  Frame one = batch;
  one.tuples.resize(1);
  const Frame decoded = decode_frame(encode_frame(one));
  EXPECT_EQ(decoded.kind, Frame::Kind::DataBatch);
  ASSERT_EQ(decoded.tuples.size(), 1u);
  EXPECT_EQ(decoded.tuples[0], one.tuples[0]);
}

TEST(WireFrame, EncodingIsDeterministic) {
  Frame f;
  f.kind = Frame::Kind::Data;
  f.seq = 7;
  f.src = "alpha";
  f.dst = "beta";
  f.tuple = Tuple("p", {Value::addr("beta"), Value::integer(-300)});
  EXPECT_EQ(encode_frame(f), encode_frame(f));
  EXPECT_EQ(encode_frame(decode_frame(encode_frame(f))), encode_frame(f));
}

// ---------------------------------------------------------------------------
// Typed rejection of malformed input
// ---------------------------------------------------------------------------

TEST(WireDecode, EveryStrictPrefixOfAFrameIsRejected) {
  Frame f;
  f.kind = Frame::Kind::Data;
  f.seq = 300;
  f.src = "n0";
  f.dst = "n1";
  f.tuple = Tuple("hop", {Value::addr("n1"), Value::str("payload"),
                          Value::list({Value::integer(-5), Value::real(2.5)})});
  const std::string bytes = encode_frame(f);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)decode_frame(bytes.substr(0, len)), WireError)
        << "prefix length " << len;
  }
  EXPECT_EQ(decode_frame(bytes), f);

  // Same property for a multi-tuple batch: truncating anywhere — frame
  // header, batch count, or mid-tuple — must reject, never deliver a
  // partial batch.
  Frame batch;
  batch.kind = Frame::Kind::DataBatch;
  batch.seq = 300;
  batch.src = "n0";
  batch.dst = "n1";
  batch.tuples = {f.tuple, Tuple("p", {Value::integer(1)}),
                  Tuple("q", {Value::addr("n1"), Value::boolean(true)})};
  const std::string batch_bytes = encode_frame(batch);
  for (std::size_t len = 0; len < batch_bytes.size(); ++len) {
    EXPECT_THROW((void)decode_frame(batch_bytes.substr(0, len)), WireError)
        << "batch prefix length " << len;
  }
  EXPECT_EQ(decode_frame(batch_bytes), batch);
}

TEST(WireDecode, BatchCountOverflowDoesNotAllocate) {
  // A batch announcing 2^40 tuples with a few payload bytes must reject
  // before reserving anything.
  std::string bytes;
  bytes.push_back(static_cast<char>(kWireMagic0));
  bytes.push_back(static_cast<char>(kWireMagic1));
  bytes.push_back(static_cast<char>(kWireVersion));
  bytes.push_back(static_cast<char>(Frame::Kind::DataBatch));
  append_varint(bytes, 1);    // seq
  append_varint(bytes, 1);    // src len
  bytes += "a";
  append_varint(bytes, 1);    // dst len
  bytes += "b";
  append_varint(bytes, std::uint64_t{1} << 40);  // batch count
  bytes += "xy";
  EXPECT_EQ(kind_of(bytes), WireErrorKind::LengthOverflow);
}

TEST(WireDecode, TrailingBytesRejected) {
  const std::string bytes = encode_frame(make_ack(1, "a", "b"));
  EXPECT_EQ(kind_of(bytes + '\x00'), WireErrorKind::TrailingBytes);
  const std::string tuple_bytes = encode_tuple(Tuple("p", {Value::integer(1)}));
  try {
    (void)decode_tuple(tuple_bytes + "xx");
    FAIL() << "trailing bytes accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::TrailingBytes);
  }
}

TEST(WireDecode, BadMagicVersionKind) {
  const std::string good = encode_frame(make_ack(1, "a", "b"));
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_EQ(kind_of(bad), WireErrorKind::BadMagic);
  bad = good;
  bad[1] = 'X';
  EXPECT_EQ(kind_of(bad), WireErrorKind::BadMagic);
  bad = good;
  bad[2] = '\x01';  // version 1: pre-batching, no longer spoken
  EXPECT_EQ(kind_of(bad), WireErrorKind::BadVersion);
  bad = good;
  bad[2] = '\x03';  // future version
  EXPECT_EQ(kind_of(bad), WireErrorKind::BadVersion);
  bad = good;
  bad[3] = '\x07';  // kind not Data, Ack or DataBatch
  EXPECT_EQ(kind_of(bad), WireErrorKind::BadKind);
}

TEST(WireDecode, BadTagAndBadBool) {
  // frame header + seq + src + dst + tuple("p", 1 value)
  Frame f;
  f.kind = Frame::Kind::Data;
  f.seq = 0;
  f.src = "a";
  f.dst = "b";
  f.tuple = Tuple("p", {Value::boolean(true)});
  std::string bytes = encode_frame(f);
  // Last two bytes are the Bool tag and its payload byte.
  std::string bad = bytes;
  bad[bytes.size() - 2] = '\x63';  // tag 99: not a ValueKind
  EXPECT_EQ(kind_of(bad), WireErrorKind::BadTag);
  bad = bytes;
  bad[bytes.size() - 1] = '\x02';  // bool payload must be 0 or 1
  EXPECT_EQ(kind_of(bad), WireErrorKind::BadBool);
}

TEST(WireDecode, VarintOverflowRejected) {
  // 10 continuation bytes then more: longer than any minimal 64-bit varint.
  std::string bytes(11, '\x80');
  bytes.push_back('\x01');
  try {
    (void)decode_value(std::string("\x02", 1) + bytes);  // Int tag + varint
    FAIL() << "varint overflow accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::VarintOverflow);
  }
  // 10th byte may only contribute one bit (2^63); 0x7F there overflows.
  std::string max10(9, '\x80');
  max10.push_back('\x7F');
  try {
    (void)decode_value(std::string("\x02", 1) + max10);
    FAIL() << "varint overflow accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::VarintOverflow);
  }
}

TEST(WireDecode, LengthOverflowDoesNotAllocate) {
  // Str announcing 2^40 bytes with 2 bytes of payload: must reject before
  // reserving anything.
  std::string bytes;
  bytes.push_back('\x04');  // Str tag
  append_varint(bytes, std::uint64_t{1} << 40);
  bytes += "ab";
  try {
    (void)decode_value(bytes);
    FAIL() << "length overflow accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::LengthOverflow);
  }
  // Same for a list count.
  std::string list_bytes;
  list_bytes.push_back('\x06');  // List tag
  append_varint(list_bytes, std::uint64_t{1} << 40);
  try {
    (void)decode_value(list_bytes);
    FAIL() << "list count overflow accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::LengthOverflow);
  }
}

TEST(WireDecode, DepthExceededBothDirections) {
  Value too_deep = Value::integer(1);
  for (std::size_t i = 0; i <= kMaxDepth; ++i) too_deep = Value::list({too_deep});
  try {
    (void)encode_value(too_deep);
    FAIL() << "encode accepted depth " << (kMaxDepth + 1);
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::DepthExceeded);
  }
  // Hand-build the same over-deep encoding: List tag + count 1, repeated.
  std::string bytes;
  for (std::size_t i = 0; i <= kMaxDepth; ++i) bytes += std::string("\x06\x01", 2);
  bytes += std::string("\x02\x02", 2);  // Int 1
  try {
    (void)decode_value(bytes);
    FAIL() << "decode accepted depth " << (kMaxDepth + 1);
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::DepthExceeded);
  }
}

TEST(WireDecode, RandomMutationsNeverCrash) {
  Frame f;
  f.kind = Frame::Kind::Data;
  f.seq = 99;
  f.src = "n0";
  f.dst = "n1";
  f.tuple = Tuple("hop", {Value::addr("n1"), Value::list({Value::str("abc")}),
                          Value::integer(-1234567), Value::real(0.5)});
  Frame batch;
  batch.kind = Frame::Kind::DataBatch;
  batch.seq = 99;
  batch.src = "n0";
  batch.dst = "n1";
  batch.tuples = {f.tuple, Tuple("p", {Value::integer(7)}),
                  Tuple("q", {Value::addr("n1"), Value::str("xyz")})};
  std::mt19937_64 rng(42);
  for (const std::string& base : {encode_frame(f), encode_frame(batch)}) {
    std::size_t rejected = 0;
    for (int round = 0; round < 2000; ++round) {
      std::string mutated = base;
      const int mutations = 1 + static_cast<int>(rng() % 3);
      for (int m = 0; m < mutations; ++m) {
        const std::size_t pos = rng() % mutated.size();
        switch (rng() % 3) {
          case 0: mutated[pos] = static_cast<char>(rng() & 0xFF); break;
          case 1: mutated.erase(pos, 1); break;
          default: mutated.insert(pos, 1, static_cast<char>(rng() & 0xFF)); break;
        }
        if (mutated.empty()) mutated = "x";
      }
      try {
        const Frame out = decode_frame(mutated);  // decoding garbage is fine...
        (void)out;
      } catch (const WireError&) {
        ++rejected;  // ...as long as rejection is always the typed error
      }
    }
    EXPECT_GT(rejected, 0u);
  }
}

// ---------------------------------------------------------------------------
// Hex helpers + golden layout pin
// ---------------------------------------------------------------------------

TEST(WireHex, RoundTripAndErrors) {
  const std::string bytes = std::string("\x00\x01\xFF\x46", 4);
  EXPECT_EQ(to_hex(bytes), "0001ff46");
  EXPECT_EQ(from_hex("0001ff46"), bytes);
  EXPECT_EQ(from_hex("00 01\nff\t46"), bytes);  // whitespace ignored
  EXPECT_THROW((void)from_hex("0g"), std::invalid_argument);
  EXPECT_THROW((void)from_hex("abc"), std::invalid_argument);  // odd digits
}

/// The dump pinned by tests/golden/wire/frames.hex. Regenerate deliberately
/// on an intentional format (version) change with:
///   build/tests/test_net_wire --gtest_filter=WireGolden.*
///     --gtest_also_run_disabled_tests  (see DISABLED_Regenerate below)
std::string golden_dump() {
  std::ostringstream os;
  const auto emit = [&os](const std::string& name, const std::string& bytes) {
    os << name << " " << to_hex(bytes) << "\n";
  };
  emit("value_nil", encode_value(Value::nil()));
  emit("value_bool_true", encode_value(Value::boolean(true)));
  emit("value_int_0", encode_value(Value::integer(0)));
  emit("value_int_-1", encode_value(Value::integer(-1)));
  emit("value_int_300", encode_value(Value::integer(300)));
  emit("value_int_min", encode_value(Value::integer(std::numeric_limits<std::int64_t>::min())));
  emit("value_double_1.5", encode_value(Value::real(1.5)));
  emit("value_str_café", encode_value(Value::str("caf\xC3\xA9")));
  emit("value_str_nul", encode_value(Value::str(std::string("a\0b", 3))));
  emit("value_addr_n0", encode_value(Value::addr("n0")));
  emit("value_list", encode_value(Value::list({Value::integer(1), Value::str("x")})));
  emit("tuple_empty", encode_tuple(Tuple("unit", {})));
  emit("tuple_link", encode_tuple(Tuple("link", {Value::addr("n0"), Value::addr("n1"),
                                                 Value::integer(1)})));
  Frame data;
  data.kind = Frame::Kind::Data;
  data.seq = 300;
  data.src = "n0";
  data.dst = "n1";
  data.tuple = Tuple("hop", {Value::addr("n1"), Value::addr("n2"), Value::integer(2)});
  emit("frame_data", encode_frame(data));
  emit("frame_ack", encode_frame(make_ack(300, "n1", "n0")));
  Frame batch;
  batch.kind = Frame::Kind::DataBatch;
  batch.seq = 300;
  batch.src = "n0";
  batch.dst = "n1";
  batch.tuples = {
      Tuple("hop", {Value::addr("n1"), Value::addr("n2"), Value::integer(2)}),
      Tuple("hop", {Value::addr("n1"), Value::addr("n3"), Value::integer(3)}),
  };
  emit("frame_batch", encode_frame(batch));
  emit("frame_batch_empty", [&] {
    Frame empty = batch;
    empty.tuples.clear();
    return encode_frame(empty);
  }());
  return os.str();
}

TEST(WireGolden, Version2LayoutIsPinned) {
  const std::string path =
      std::string(FVN_SOURCE_DIR) + "/tests/golden/wire/frames.hex";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(golden_dump(), os.str())
      << "wire format drifted from the version-2 golden; bump kWireVersion "
         "and regenerate deliberately";
  // Every golden line must also decode back to something that re-encodes
  // identically (the dump is self-consistent, not just frozen).
  std::ifstream again(path);
  std::string name, hex;
  while (again >> name >> hex) {
    const std::string bytes = from_hex(hex);
    if (name.rfind("frame_", 0) == 0) {
      EXPECT_EQ(encode_frame(decode_frame(bytes)), bytes) << name;
    } else if (name.rfind("tuple_", 0) == 0) {
      EXPECT_EQ(encode_tuple(decode_tuple(bytes)), bytes) << name;
    } else {
      EXPECT_EQ(encode_value(decode_value(bytes)), bytes) << name;
    }
  }
}

TEST(WireGolden, DISABLED_Regenerate) {
  const std::string path =
      std::string(FVN_SOURCE_DIR) + "/tests/golden/wire/frames.hex";
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << path;
  out << golden_dump();
}

}  // namespace
}  // namespace fvn::net
