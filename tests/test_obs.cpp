// Tests for the fvn::obs observability layer (DESIGN.md §9): metric
// primitives and registry semantics, the strict JSON reader, span-based
// tracing with an injected clock (golden-pinned Chrome trace_event output),
// and the end-to-end integrations — evaluator, simulator, prover and model
// checker all reporting into a Registry whose series must agree with the
// subsystems' own statistics.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/protocols.hpp"
#include "mc/checker.hpp"
#include "ndlog/eval.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prover/prover.hpp"
#include "runtime/simulator.hpp"

namespace fvn {
namespace {

using obs::Counter;
using obs::Histogram;
using obs::json_parse;
using obs::json_valid;
using obs::JsonValue;
using obs::Registry;
using obs::Span;
using obs::Timer;
using obs::Trace;

std::string read_golden(const std::string& name) {
  const std::string path = std::string(FVN_SOURCE_DIR) + "/tests/golden/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Sum of counters matching a prefix AND suffix (e.g. every per-rule
/// "/firings" series) — the shape the consistency checks need.
std::uint64_t sum_counters(const Registry& registry, std::string_view prefix,
                           std::string_view suffix) {
  std::uint64_t total = 0;
  for (const auto& [name, counter] : registry.counters()) {
    if (name.starts_with(prefix) && name.ends_with(suffix)) total += counter.value();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(ObsCounter, AccumulatesAdds) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsHistogram, BitWidthBuckets) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(~0ull), 64u);
}

TEST(ObsHistogram, SummaryStatistics) {
  Histogram h;
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  for (std::uint64_t s : {5u, 1u, 9u, 1u}) h.observe(s);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 16u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 9u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_EQ(h.buckets()[1], 2u);   // the two 1s
  EXPECT_EQ(h.buckets()[3], 1u);   // 5
  EXPECT_EQ(h.buckets()[4], 1u);   // 9
}

TEST(ObsTimer, RecordsAndScopes) {
  Timer t;
  t.record_ns(1'000'000);
  t.record_ns(500'000);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_EQ(t.total_ns(), 1'500'000u);
  EXPECT_DOUBLE_EQ(t.total_ms(), 1.5);
  { Timer::Scope scope(&t); }
  EXPECT_EQ(t.count(), 3u);
  { Timer::Scope disabled(nullptr); }  // must not crash
  EXPECT_EQ(t.count(), 3u);
}

TEST(ObsRegistry, LookupCreatesAndFindDoesNot) {
  Registry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.find_counter("a"), nullptr);
  registry.counter("a").add(7);
  registry.histogram("h").observe(1);
  registry.timer("t").record_ns(10);
  EXPECT_EQ(registry.series_count(), 3u);
  ASSERT_NE(registry.find_counter("a"), nullptr);
  EXPECT_EQ(registry.find_counter("a")->value(), 7u);
  EXPECT_EQ(registry.find_histogram("missing"), nullptr);
  EXPECT_EQ(registry.find_timer("missing"), nullptr);
}

TEST(ObsRegistry, SumCountersWithPrefix) {
  Registry registry;
  registry.counter("eval/rule/r1/firings").add(3);
  registry.counter("eval/rule/r2/firings").add(4);
  registry.counter("sim/node/n0/sent").add(100);
  EXPECT_EQ(registry.sum_counters_with_prefix("eval/rule/"), 7u);
  EXPECT_EQ(registry.sum_counters_with_prefix("sim/"), 100u);
  EXPECT_EQ(registry.sum_counters_with_prefix("prover/"), 0u);
}

// ---------------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------------

TEST(ObsJson, ParsesDocument) {
  auto doc = json_parse(R"({"a":[1,2.5,-3],"b":{"c":"x\n\"y\""},"t":true,"n":null})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -3.0);
  const JsonValue* c = doc->find("b")->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->string, "x\n\"y\"");
  EXPECT_TRUE(doc->find("t")->boolean);
  EXPECT_EQ(doc->find("n")->kind, JsonValue::Kind::Null);
}

TEST(ObsJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{} trailing"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("{\"a\":01}"));
  EXPECT_FALSE(json_valid("tru"));
  EXPECT_FALSE(json_valid("\"unterminated"));
  EXPECT_FALSE(json_valid("\"bad\\escape\""));
  EXPECT_TRUE(json_valid("  {\"ok\": [true, false, null, 0, -0.5e2]} \n"));
}

TEST(ObsJson, EscapeRoundTripsThroughParser) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 end";
  auto parsed = json_parse("\"" + obs::json_escape(nasty) + "\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->string, nasty);
}

// ---------------------------------------------------------------------------
// Registry export
// ---------------------------------------------------------------------------

Registry golden_registry() {
  Registry registry;
  registry.counter("eval/rounds").add(3);
  registry.counter("eval/rule/r1/firings").add(12);
  registry.counter("sim/node/n0/sent").add(4);
  registry.histogram("eval/round_delta").observe(0);
  registry.histogram("eval/round_delta").observe(5);
  registry.histogram("eval/round_delta").observe(9);
  registry.timer("eval/total").record_ns(1'500'000);
  return registry;
}

TEST(ObsRegistry, JsonExportParsesAndCarriesValues) {
  const Registry registry = golden_registry();
  auto doc = json_parse(registry.to_json());
  ASSERT_TRUE(doc.has_value()) << registry.to_json();
  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("eval/rounds")->number, 3.0);
  const JsonValue* delta = doc->find("histograms")->find("eval/round_delta");
  ASSERT_NE(delta, nullptr);
  EXPECT_DOUBLE_EQ(delta->find("count")->number, 3.0);
  EXPECT_DOUBLE_EQ(delta->find("max")->number, 9.0);
  const JsonValue* timer = doc->find("timers")->find("eval/total");
  ASSERT_NE(timer, nullptr);
  EXPECT_DOUBLE_EQ(timer->find("total_ns")->number, 1'500'000.0);
}

TEST(ObsGolden, MetricsJson) {
  // Regenerate deliberately on intentional format changes:
  //   write golden_registry().to_json() to tests/golden/metrics.json
  EXPECT_EQ(golden_registry().to_json(), read_golden("metrics.json"));
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(ObsTrace, SpanNestingAndUnbalancedEnds) {
  Trace trace([] { return std::uint64_t{0}; });
  EXPECT_EQ(trace.depth(), 0u);
  trace.begin_span("outer", "t");
  trace.begin_span("inner", "t");
  EXPECT_EQ(trace.depth(), 2u);
  trace.end_span();
  trace.end_span();
  trace.end_span();  // unbalanced: ignored
  EXPECT_EQ(trace.depth(), 0u);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.events()[0].phase, 'B');
  EXPECT_EQ(trace.events()[3].phase, 'E');
}

TEST(ObsTrace, NullToleratedEverywhere) {
  Span span(nullptr, "noop", "t");
  span.end("{\"ignored\":1}");  // double-close is also fine
}

TEST(ObsTrace, ExplicitTimestampsBypassClock) {
  Trace trace([] { return std::uint64_t{77}; });
  trace.instant_at(5, "virt", "sim");
  trace.counter_at(6, "q", "sim", 2.0);
  trace.instant("wall", "sim");
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.events()[0].ts_us, 5u);
  EXPECT_EQ(trace.events()[1].ts_us, 6u);
  EXPECT_EQ(trace.events()[2].ts_us, 77u);
}

TEST(ObsGolden, TraceJson) {
  std::uint64_t t = 0;
  Trace trace([&t] { return t += 10; });
  trace.begin_span("outer", "test");
  trace.instant("tick", "test", "{\"k\":1}");
  {
    Span inner(&trace, "inner", "test");
    inner.end("{\"n\":2}");
  }
  trace.counter("series", "test", 2.5);
  trace.counter_at(1000, "virt", "test", 7.0);
  trace.end_span();
  ASSERT_TRUE(json_valid(trace.to_json())) << trace.to_json();
  // Regenerate deliberately on intentional format changes (see above).
  EXPECT_EQ(trace.to_json(), read_golden("trace.json"));
}

// ---------------------------------------------------------------------------
// Evaluator integration: per-rule/per-stratum series must agree with the
// EvalStats aggregate, and the trace must nest correctly.
// ---------------------------------------------------------------------------

TEST(ObsEvaluator, PerRuleSeriesSumToAggregateStats) {
  Registry registry;
  Trace trace;
  ndlog::EvalOptions options;
  options.metrics = &registry;
  options.trace = &trace;
  ndlog::Evaluator eval;
  auto result = eval.run(core::path_vector_program(),
                         core::link_facts(core::ring_topology(4)), options);

  EXPECT_EQ(sum_counters(registry, "eval/rule/", "/firings"), result.stats.rule_firings);
  EXPECT_EQ(sum_counters(registry, "eval/rule/", "/derived"),
            result.stats.tuples_derived);
  EXPECT_EQ(sum_counters(registry, "eval/rule/", "/probes"), result.stats.join_probes);
  EXPECT_EQ(sum_counters(registry, "eval/stratum/", "/derived"),
            result.stats.tuples_derived);
  // Round histogram: one sample per counted round.
  const obs::Histogram* rounds = registry.find_histogram("eval/round_delta");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(registry.find_counter("eval/rounds")->value(), rounds->count());

  // Trace: balanced spans, valid JSON.
  EXPECT_EQ(trace.depth(), 0u);
  std::size_t begins = 0, ends = 0;
  for (const auto& event : trace.events()) {
    begins += event.phase == 'B';
    ends += event.phase == 'E';
  }
  EXPECT_EQ(begins, ends);
  EXPECT_GT(begins, 0u);
  EXPECT_TRUE(json_valid(trace.to_json()));
}

TEST(ObsEvaluator, DisabledInstrumentationRecordsNothing) {
  Registry registry;
  ndlog::Evaluator eval;
  auto result =
      eval.run(core::reachable_program(), core::link_facts(core::line_topology(3)));
  EXPECT_GT(result.stats.rule_firings, 0u);
  EXPECT_TRUE(registry.empty());
}

// ---------------------------------------------------------------------------
// Simulator integration: per-node counters vs SimStats.
// ---------------------------------------------------------------------------

TEST(ObsSimulator, PerNodeCountersMatchSimStats) {
  Registry registry;
  Trace trace;
  runtime::SimOptions options;
  options.metrics = &registry;
  options.obs_trace = &trace;
  runtime::Simulator sim(core::path_vector_program(), options);
  sim.inject_all(core::link_facts(core::line_topology(4)));
  auto stats = sim.run();

  EXPECT_EQ(sum_counters(registry, "sim/node/", "/sent"), stats.messages_sent);
  EXPECT_EQ(sum_counters(registry, "sim/node/", "/dropped"), stats.messages_dropped);
  EXPECT_EQ(sum_counters(registry, "sim/node/", "/installed"), stats.tuples_derived);
  EXPECT_EQ(sum_counters(registry, "sim/node/", "/overwrites"), stats.overwrites);
  const obs::Histogram* depth = registry.find_histogram("sim/queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->count(), stats.events_processed);

  // Virtual-time trace: timestamps are simulated microseconds, monotone
  // under the event queue's time ordering.
  ASSERT_GT(trace.size(), 0u);
  std::uint64_t last = 0;
  for (const auto& event : trace.events()) {
    EXPECT_GE(event.ts_us, last);
    last = event.ts_us;
  }
  EXPECT_TRUE(json_valid(trace.to_json()));
}

// ---------------------------------------------------------------------------
// Prover integration: per-tactic counters and timers.
// ---------------------------------------------------------------------------

TEST(ObsProver, TacticCountersAndTimers) {
  Registry registry;
  prover::Prover prover(logic::Theory{});
  prover.set_metrics(&registry);
  auto result = prover.prove_auto(logic::Theorem{"trivial", logic::Formula::truth()});
  EXPECT_TRUE(result.proved);
  const obs::Counter* grinds = registry.find_counter("prover/tactic/grind/invocations");
  ASSERT_NE(grinds, nullptr);
  EXPECT_EQ(grinds->value(), 1u);
  const obs::Timer* timer = registry.find_timer("prover/tactic/grind");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->count(), 1u);
  // grind's micro-steps land under prover/grind/<step>.
  EXPECT_GT(registry.sum_counters_with_prefix("prover/grind/"), 0u);
}

// ---------------------------------------------------------------------------
// Model-checker integration: exploration totals.
// ---------------------------------------------------------------------------

TEST(ObsChecker, CheckInvariantRecordsExploration) {
  Registry registry;
  auto successors = [](const int& s) {
    return s < 5 ? std::vector<int>{s + 1} : std::vector<int>{};
  };
  auto invariant = [](const int&) { return true; };
  auto result = mc::check_invariant<int>({0}, successors, invariant, 1000, &registry);
  EXPECT_TRUE(result.property_holds);
  EXPECT_EQ(registry.find_counter("mc/states_expanded")->value(),
            result.states_explored);
  EXPECT_EQ(registry.find_counter("mc/transitions")->value(), result.transitions);
  EXPECT_EQ(result.states_explored, 6u);
}

TEST(ObsChecker, FindCycleRecordsEvenOnEarlyReturn) {
  Registry registry;
  auto successors = [](const int& s) { return std::vector<int>{(s + 1) % 3}; };
  auto any = [](const int&) { return true; };
  auto result = mc::find_cycle<int>({0}, successors, any, 1000, &registry);
  EXPECT_FALSE(result.property_holds);  // cycle found
  EXPECT_EQ(registry.find_counter("mc/states_expanded")->value(),
            result.states_explored);
  EXPECT_EQ(registry.find_counter("mc/transitions")->value(), result.transitions);
}

}  // namespace
}  // namespace fvn
