// fvn::net stats-consistency suite — every counter the runtime exposes must
// tell the same story through every surface. Three layers report on the same
// run: NodeStats (plain counters read post-join), the obs Registry series the
// Cluster wires per node, and TransportStats (what actually crossed the
// wire). This suite pins their agreement across reliability on/off ×
// inproc/udp × loss seeds, plus two protocol-level regressions:
//
//   * raw (non-reliable) frames carry seq 0 and are byte-identical across
//     runs — fire-and-forget mode must not consume per-channel sequence
//     numbers it never uses;
//   * a TransportError during retransmission commits *nothing*: no backoff
//     escalation, no retransmitted/bytes_sent bump, no node failure — the
//     frame is simply retried later at the same backoff.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/protocols.hpp"
#include "ndlog/parser.hpp"
#include "net/cluster.hpp"
#include "net/node.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"

namespace fvn {
namespace {

using ndlog::Tuple;
using ndlog::Value;

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

ndlog::Program example_program(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(FVN_SOURCE_DIR) / "examples" / "ndlog" / name;
  return ndlog::parse_program(slurp(path), name);
}

std::vector<Tuple> line_workload() {
  return core::link_facts(core::line_topology(4));
}

struct Config {
  std::string label;
  bool reliable = true;
  net::TransportKind transport = net::TransportKind::InProc;
  double drop_rate = 0.0;
  std::uint64_t seed = 1;
};

std::vector<Config> configs() {
  return {
      {"reliable/inproc/lossless", true, net::TransportKind::InProc, 0.0, 1},
      {"reliable/inproc/loss=0.2 seed=3", true, net::TransportKind::InProc, 0.2, 3},
      {"reliable/inproc/loss=0.2 seed=17", true, net::TransportKind::InProc, 0.2, 17},
      {"raw/inproc/lossless", false, net::TransportKind::InProc, 0.0, 1},
      {"reliable/udp/lossless", true, net::TransportKind::Udp, 0.0, 1},
      {"reliable/udp/loss=0.2 seed=3", true, net::TransportKind::Udp, 0.2, 3},
  };
}

// ---------------------------------------------------------------------------
// NodeStats == obs counters, per node, for every configuration
// ---------------------------------------------------------------------------

TEST(NetStats, ObsCountersAgreeWithNodeStats) {
  const auto program = example_program("reachable.ndlog");
  const auto facts = line_workload();
  for (const Config& cfg : configs()) {
    SCOPED_TRACE(cfg.label);
    obs::Registry registry;
    net::ClusterOptions options;
    options.reliability.enabled = cfg.reliable;
    options.transport = cfg.transport;
    options.faults.drop_rate = cfg.drop_rate;
    options.faults.seed = cfg.seed;
    options.metrics = &registry;
    net::Cluster cluster(program, options);
    cluster.inject_all(facts);
    net::ClusterStats stats;
    try {
      stats = cluster.run();
    } catch (const net::TransportError& e) {
      GTEST_SKIP() << "UDP sockets unavailable here: " << e.what();
    }
    ASSERT_TRUE(stats.quiesced);
    for (const auto& name : cluster.nodes()) {
      SCOPED_TRACE(name);
      const net::NodeStats& ns = cluster.node_stats(name);
      const std::string base = "net/node/" + name + "/";
      const auto counter = [&](const std::string& series) -> std::uint64_t {
        const auto* c = registry.find_counter(base + series);
        EXPECT_NE(c, nullptr) << series;
        return c == nullptr ? 0 : c->value();
      };
      EXPECT_EQ(counter("sent"), ns.sent);
      EXPECT_EQ(counter("received"), ns.received);
      EXPECT_EQ(counter("retransmitted"), ns.retransmitted);
      EXPECT_EQ(counter("acked"), ns.acked);
      EXPECT_EQ(counter("installed"), ns.installed);
      EXPECT_EQ(counter("bytes_sent"), ns.bytes_sent);
      EXPECT_EQ(counter("bytes_received"), ns.bytes_received);
      EXPECT_EQ(counter("ack_bytes"), ns.ack_bytes);
      EXPECT_EQ(counter("tuples_shipped"), ns.tuples_shipped);
      // The batch-size histogram samples exactly the sent batches and sums
      // to exactly the shipped tuples.
      const auto* batch = registry.find_histogram(base + "batch_size");
      ASSERT_NE(batch, nullptr);
      EXPECT_EQ(batch->count(), ns.sent);
      EXPECT_EQ(batch->sum(), ns.tuples_shipped);
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-layer byte accounting: nodes vs transport
// ---------------------------------------------------------------------------

TEST(NetStats, NodeAndTransportByteAccountingAgree) {
  const auto program = example_program("path_vector.ndlog");
  const auto facts = line_workload();
  for (const Config& cfg : configs()) {
    SCOPED_TRACE(cfg.label);
    net::ClusterOptions options;
    options.reliability.enabled = cfg.reliable;
    options.transport = cfg.transport;
    options.faults.drop_rate = cfg.drop_rate;
    options.faults.seed = cfg.seed;
    net::Cluster cluster(program, options);
    cluster.inject_all(facts);
    net::ClusterStats stats;
    try {
      stats = cluster.run();
    } catch (const net::TransportError& e) {
      GTEST_SKIP() << "UDP sockets unavailable here: " << e.what();
    }
    ASSERT_TRUE(stats.quiesced);
    // What the nodes handed down is what the transport saw handed down —
    // exactly, now that acks are counted (the transport then drops/dups per
    // its fault schedule, so only the pre-fault send counts can be compared).
    EXPECT_EQ(stats.transport.frames_sent,
              stats.messages_sent + stats.retransmitted + stats.acks_sent);
    // Every frame the transport delivered was drained and counted by a node.
    EXPECT_EQ(stats.bytes_received, stats.transport.bytes_delivered);
    if (cfg.drop_rate == 0.0 && cfg.transport == net::TransportKind::InProc) {
      // Lossless, duplicate-free, in-order: byte totals agree exactly and
      // every frame sent is a frame delivered.
      EXPECT_EQ(stats.bytes_sent, stats.transport.bytes_sent);
      EXPECT_EQ(stats.transport.frames_delivered, stats.transport.frames_sent);
      EXPECT_EQ(stats.bytes_sent, stats.bytes_received);
      if (cfg.reliable) {
        // FIFO transport, no reorder => every arriving batch (first copy or
        // re-delivered retransmit) draws exactly one cumulative ack.
        // (Retransmits happen even losslessly when a receiver is slower than
        // the backoff, e.g. under sanitizers or a loaded machine.)
        EXPECT_EQ(stats.acks_sent, stats.messages_received + stats.duplicates);
      }
    }
    if (cfg.reliable) {
      EXPECT_EQ(stats.messages_received, stats.messages_sent);
      EXPECT_EQ(stats.acked, stats.messages_sent);
      EXPECT_EQ(stats.tuples_received, stats.tuples_shipped);
      EXPECT_GT(stats.ack_bytes, 0u);
      EXPECT_LT(stats.ack_bytes, stats.bytes_sent);
    } else {
      EXPECT_EQ(stats.acks_sent, 0u);
      EXPECT_EQ(stats.ack_bytes, 0u);
      EXPECT_EQ(stats.acked, 0u);
      EXPECT_EQ(stats.retransmitted, 0u);
      EXPECT_EQ(stats.tuples_received, stats.tuples_shipped);
    }
  }
}

// ---------------------------------------------------------------------------
// Raw mode: seq 0, byte-identical across runs
// ---------------------------------------------------------------------------

/// An already-local two-node program: a link fact at @S derives hops at @D.
/// Two links to the same destination give a two-tuple batch.
const char* kShipProgram =
    "materialize(link, infinity, infinity, keys(1,2,3)).\n"
    "materialize(hop, infinity, infinity, keys(1,2,3)).\n"
    "t1 hop(@D,S,C) :- link(@S,D,C).\n";

std::vector<Tuple> ship_seeds() {
  return {Tuple("link", {Value::addr("n0"), Value::addr("n1"), Value::integer(1)}),
          Tuple("link", {Value::addr("n0"), Value::addr("n1"), Value::integer(2)})};
}

/// Run a single sender node over a fault-free transport and return every
/// frame that lands in n1's mailbox, in order.
std::vector<std::string> raw_ship_frames(const ndlog::Program& program,
                                         const ndlog::Catalog& catalog,
                                         bool batch, net::NodeStats* out_stats) {
  net::InProcTransport transport;
  transport.add_node("n0");
  transport.add_node("n1");
  net::ReliabilityOptions reliability;
  reliability.enabled = false;
  reliability.batch = batch;
  net::Node node("n0", program, catalog, ndlog::BuiltinRegistry::standard(),
                 nullptr, transport, reliability, {});
  for (const auto& fact : ship_seeds()) node.seed(fact);
  // Seeds are processed (and channels flushed) before the event loop starts,
  // so a pre-set stop flag gives a deterministic single-pass run.
  std::atomic<bool> stop{true};
  node.run(stop);
  EXPECT_FALSE(node.failed()) << node.error();
  if (out_stats != nullptr) *out_stats = node.stats();
  std::vector<std::string> frames;
  std::string frame;
  while (transport.recv("n1", frame)) frames.push_back(frame);
  return frames;
}

TEST(NetStats, RawModeFramesCarrySeqZeroAndAreByteIdenticalAcrossRuns) {
  const auto program = ndlog::parse_program(kShipProgram, "ship");
  const auto catalog = ndlog::Catalog::from_program(program);
  for (const bool batch : {true, false}) {
    SCOPED_TRACE(batch ? "batched" : "unbatched");
    net::NodeStats stats;
    const auto first = raw_ship_frames(program, catalog, batch, &stats);
    const auto second = raw_ship_frames(program, catalog, batch, nullptr);
    EXPECT_EQ(first, second) << "raw-mode wire bytes must be reproducible";
    ASSERT_EQ(first.size(), batch ? 1u : 2u);
    std::size_t tuples_seen = 0;
    for (const auto& bytes : first) {
      const net::Frame decoded = net::decode_frame(bytes);
      EXPECT_EQ(decoded.kind, net::Frame::Kind::DataBatch);
      EXPECT_EQ(decoded.seq, 0u) << "raw frames must not consume seq numbers";
      EXPECT_EQ(decoded.src, "n0");
      EXPECT_EQ(decoded.dst, "n1");
      tuples_seen += decoded.tuples.size();
    }
    EXPECT_EQ(tuples_seen, 2u);
    EXPECT_EQ(stats.sent, first.size());
    EXPECT_EQ(stats.tuples_shipped, 2u);
    EXPECT_EQ(stats.acks_sent, 0u);
    EXPECT_EQ(stats.ack_bytes, 0u);
  }
}

// ---------------------------------------------------------------------------
// Retransmit: a refused send commits nothing
// ---------------------------------------------------------------------------

/// A transport whose transmit() can be made to throw on demand; otherwise a
/// plain mutex-guarded mailbox (fault injection off, nothing held).
class FlakyTransport final : public net::Transport {
 public:
  std::atomic<bool> fail{false};

  void add_node(const std::string& name) override {
    net::Transport::add_node(name);
    std::lock_guard<std::mutex> lock(mutex_);
    boxes_[name];
  }

  /// Test-side injection of a hand-built frame (e.g. a forged ack).
  void inject(const std::string& to, std::string frame) {
    transmit("test", to, std::move(frame));
  }

 protected:
  void transmit(const std::string& /*from*/, const std::string& to,
                std::string frame) override {
    if (fail.load(std::memory_order_acquire)) {
      throw net::TransportError("flaky: refusing frame to " + to);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    boxes_.at(to).push_back(std::move(frame));
  }
  bool poll(const std::string& node, std::string& frame) override {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& box = boxes_.at(node);
    if (box.empty()) return false;
    frame = std::move(box.front());
    box.pop_front();
    return true;
  }
  bool impl_quiet() override {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, box] : boxes_) {
      if (!box.empty()) return false;
    }
    return true;
  }

 private:
  std::mutex mutex_;
  std::map<std::string, std::deque<std::string>> boxes_;
};

TEST(NetStats, RefusedRetransmitCommitsNoBackoffOrCounters) {
  const auto program = ndlog::parse_program(kShipProgram, "ship");
  const auto catalog = ndlog::Catalog::from_program(program);
  FlakyTransport transport;
  transport.add_node("n0");
  transport.add_node("n1");
  net::Node node("n0", program, catalog, ndlog::BuiltinRegistry::standard(),
                 nullptr, transport, {}, {});
  for (const auto& fact : ship_seeds()) node.seed(fact);

  const auto spin = [&node](std::chrono::milliseconds for_ms) {
    std::atomic<bool> stop{false};
    std::thread t([&] { node.run(stop); });
    std::this_thread::sleep_for(for_ms);
    stop.store(true, std::memory_order_release);
    t.join();
  };

  // Phase 1: initial flush succeeds; nobody acks, so the batch stays pending.
  {
    std::atomic<bool> stop{true};
    node.run(stop);
  }
  ASSERT_FALSE(node.failed()) << node.error();
  ASSERT_EQ(node.stats().sent, 1u);
  ASSERT_EQ(node.unacked(), 1u);
  const std::uint64_t bytes_after_send = node.stats().bytes_sent;

  // Phase 2: the transport refuses everything. Many retransmit deadlines
  // elapse (initial backoff is 2ms), but none of those attempts happened —
  // the counters must not move, backoff must not escalate, and the node must
  // not be marked failed.
  transport.fail.store(true, std::memory_order_release);
  spin(std::chrono::milliseconds(40));
  EXPECT_FALSE(node.failed()) << node.error();
  EXPECT_EQ(node.stats().retransmitted, 0u);
  EXPECT_EQ(node.stats().bytes_sent, bytes_after_send);
  EXPECT_EQ(node.unacked(), 1u);

  // Phase 3: the transport recovers; the pending batch goes out promptly
  // (backoff never escalated past the 50ms cap, let alone stuck there).
  transport.fail.store(false, std::memory_order_release);
  spin(std::chrono::milliseconds(60));
  EXPECT_FALSE(node.failed()) << node.error();
  EXPECT_GE(node.stats().retransmitted, 1u);
  EXPECT_GT(node.stats().bytes_sent, bytes_after_send);
  EXPECT_EQ(node.unacked(), 1u);

  // Phase 4: a cumulative ack for seq 1 clears the pending batch.
  net::Frame ack;
  ack.kind = net::Frame::Kind::Ack;
  ack.seq = 1;
  ack.src = "n1";
  ack.dst = "n0";
  transport.inject("n0", net::encode_frame(ack));
  spin(std::chrono::milliseconds(10));
  EXPECT_FALSE(node.failed()) << node.error();
  EXPECT_EQ(node.stats().acked, 1u);
  EXPECT_EQ(node.unacked(), 0u);
}

}  // namespace
}  // namespace fvn
