// Cross-validation of the static cost & cardinality analyzer (DESIGN.md §13)
// against actual executions — the falsifiability contract of cost.hpp:
//
//   * per-rule firing bounds must dominate the evaluator's measured
//     eval/rule/<r>/firings counters and the simulator's sim/rule/<r>/firings
//     counters (interpreter engine) on every shipped example;
//   * per-predicate derivation bounds must dominate final relation sizes;
//   * in dataflow mode, the per-strand head-emission counters must stay
//     within the same firing bounds (both engines, one static model);
//   * the per-rule wire-byte bounds must dominate the threaded cluster's
//     net/node/<n>/bytes_sent counters on a lossless transport;
//   * every ND0019/ND0020/ND0021 verdict must be witnessed at runtime:
//     a cheaper join order must actually reduce dataflow work without
//     changing the fixpoint, an unbounded-message rule must actually exhaust
//     an event budget a bounded program respects, and a recompute-heavy
//     aggregate must actually be maintainable incrementally;
//   * the planner's cost-guided join-order mode must stay bit-identical to
//     the interpreter fixpoint across the whole example matrix.
//
// Bounds are evaluated under an environment measured from the run itself:
// V = distinct addresses among the base facts, |pred| = injected base-table
// counts, A = a safe per-scalar wire-byte ceiling.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dataflow/plan.hpp"
#include "ndlog/cost.hpp"
#include "ndlog/diagnostics.hpp"
#include "ndlog/eval.hpp"
#include "ndlog/parser.hpp"
#include "net/cluster.hpp"
#include "obs/metrics.hpp"
#include "runtime/localize.hpp"
#include "runtime/simulator.hpp"

namespace fvn {
namespace {

using ndlog::Diagnostic;
using ndlog::DiagnosticSink;
using ndlog::Program;
using ndlog::Tuple;
using ndlog::cost::Bound;
using ndlog::cost::CostReport;
using ndlog::cost::RuleCost;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

Program load_example(const std::string& stem) {
  return ndlog::parse_program(slurp(std::string(FVN_SOURCE_DIR) +
                             "/examples/ndlog/" + stem + ".ndlog"),
                       stem);
}

std::vector<Tuple> facts(const std::vector<std::string>& lines) {
  std::vector<Tuple> out;
  out.reserve(lines.size());
  for (const auto& l : lines) out.push_back(ndlog::parse_fact(l));
  return out;
}

CostReport cost_report(const Program& program,
                       std::vector<Diagnostic>* diags_out = nullptr) {
  DiagnosticSink sink;
  auto report = ndlog::cost::analyze(program, sink);
  if (diags_out != nullptr) *diags_out = sink.diagnostics();
  return report;
}

bool has_code(const std::vector<Diagnostic>& diags, std::string_view code) {
  for (const auto& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

/// Measured symbol environment: V from the base facts' address values,
/// |pred| from the injected counts, A a safe scalar wire-byte ceiling (the
/// codec never spends more than a few bytes on the short addresses and small
/// integers these runs use).
std::map<std::string, double> measured_env(const CostReport& report,
                                           const std::vector<Tuple>& base) {
  std::set<std::string> addrs;
  std::map<std::string, double> injected;
  for (const auto& t : base) {
    injected["|" + t.predicate() + "|"] += 1.0;
    for (const auto& v : t.values()) {
      if (v.is_addr()) addrs.insert(v.to_string());
    }
  }
  std::map<std::string, double> env;
  env["V"] = static_cast<double>(addrs.size());
  env["A"] = 64.0;
  for (const auto& p : report.predicates) {
    if (p.base) env["|" + p.predicate + "|"] = injected["|" + p.predicate + "|"];
  }
  return env;
}

struct Case {
  const char* stem;
  std::vector<std::string> base;
};

// A bidirectional triangle drives most examples (same witness topology the
// semantic cross-validation uses); link_state gets coarse costs so its
// C < 1000 recursion bottoms out after three hops, and distance_vector gets
// a directed line — on any cycle its hop counts genuinely diverge (that is
// ND0020's witness below, not a per-rule-bound scenario).
const std::vector<std::string> kTriangle = {
    "link(@n0,n1,1)", "link(@n1,n0,1)", "link(@n1,n2,1)",
    "link(@n2,n1,1)", "link(@n2,n0,2)", "link(@n0,n2,2)"};
const std::vector<std::string> kCoarseTriangle = {
    "link(@n0,n1,300)", "link(@n1,n0,300)", "link(@n1,n2,300)",
    "link(@n2,n1,300)", "link(@n2,n0,600)", "link(@n0,n2,600)"};
const std::vector<std::string> kNodes = {"node(@n0)", "node(@n1)", "node(@n2)"};
const std::vector<std::string> kPrefs = {
    "importPref(@n0,n1,100)", "importPref(@n0,n2,100)",
    "importPref(@n1,n0,100)", "importPref(@n1,n2,100)",
    "importPref(@n2,n0,100)", "importPref(@n2,n1,100)"};

std::vector<Case> example_cases() {
  std::vector<Case> cases;
  cases.push_back({"reachable", kTriangle});
  cases.push_back({"path_vector", kTriangle});
  cases.push_back({"link_state", kCoarseTriangle});
  {
    Case c{"spanning_tree", kTriangle};
    c.base.insert(c.base.end(), kNodes.begin(), kNodes.end());
    cases.push_back(c);
  }
  {
    Case c{"policy_path_vector", kTriangle};
    c.base.insert(c.base.end(), kNodes.begin(), kNodes.end());
    c.base.insert(c.base.end(), kPrefs.begin(), kPrefs.end());
    cases.push_back(c);
  }
  cases.push_back({"distance_vector", {"link(@n0,n1,1)", "link(@n1,n2,1)"}});
  return cases;
}

// ---------------------------------------------------------------------------
// Evaluator: measured firings and table sizes vs static bounds
// ---------------------------------------------------------------------------

TEST(CostBounds, EvaluatorFiringsAndTableSizesStayWithinStaticBounds) {
  for (const auto& c : example_cases()) {
    const auto program = load_example(c.stem);
    const auto report = cost_report(program);
    const auto base = facts(c.base);
    const auto env = measured_env(report, base);

    obs::Registry metrics;
    ndlog::EvalOptions options;
    options.max_iterations = 5000;
    options.metrics = &metrics;
    ndlog::Evaluator eval;
    const auto result = eval.run(program, base, options);

    for (const auto& rc : report.rules) {
      const auto* counter =
          metrics.find_counter("eval/rule/" + rc.rule + "/firings");
      const double measured =
          counter == nullptr ? 0.0 : static_cast<double>(counter->value());
      EXPECT_LE(measured, rc.firings.evaluate(env))
          << c.stem << " rule " << rc.rule << ": measured " << measured
          << " firings exceed static bound " << rc.firings.to_string();
    }
    for (const auto& pc : report.predicates) {
      const double measured =
          static_cast<double>(result.database.relation(pc.predicate).size());
      EXPECT_LE(measured, pc.derivations.evaluate(env))
          << c.stem << " predicate " << pc.predicate << ": " << measured
          << " tuples exceed static bound " << pc.derivations.to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// Simulator, interpreter engine: per-rule firing counters vs bounds
// ---------------------------------------------------------------------------

TEST(CostBounds, SimulatorInterpreterFiringsStayWithinStaticBounds) {
  for (const auto& c : example_cases()) {
    const auto program = load_example(c.stem);
    // The simulator executes the localized rewrite, so measure that program:
    // ship rules get their own bounds and the rule labels line up with the
    // sim/rule/<label>/firings counters.
    const auto localized = runtime::localize(program);
    const auto report = cost_report(localized);
    const auto base = facts(c.base);
    const auto env = measured_env(report, base);

    obs::Registry metrics;
    runtime::SimOptions options;
    options.metrics = &metrics;
    runtime::Simulator sim(program, options);
    sim.inject_all(base);
    const auto stats = sim.run();
    EXPECT_TRUE(stats.quiesced) << c.stem;

    for (const auto& rc : report.rules) {
      const auto* counter =
          metrics.find_counter("sim/rule/" + rc.rule + "/firings");
      const double measured =
          counter == nullptr ? 0.0 : static_cast<double>(counter->value());
      EXPECT_LE(measured, rc.firings.evaluate(env))
          << c.stem << " rule " << rc.rule << ": measured " << measured
          << " firings exceed static bound " << rc.firings.to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// Simulator, dataflow engine: per-strand head emissions vs the same bounds
// ---------------------------------------------------------------------------

TEST(CostBounds, SimulatorDataflowEmissionsStayWithinStaticBounds) {
  for (const auto& c : example_cases()) {
    const auto program = load_example(c.stem);
    const auto report = cost_report(runtime::localize(program));
    const auto base = facts(c.base);
    const auto env = measured_env(report, base);

    obs::Registry metrics;
    runtime::SimOptions options;
    options.metrics = &metrics;
    options.engine = runtime::EngineKind::Dataflow;
    runtime::Simulator sim(program, options);
    sim.inject_all(base);
    const auto stats = sim.run();
    EXPECT_TRUE(stats.quiesced) << c.stem;

    // Sum each rule's head emissions: the final element's /out counter of
    // every strand (normal and aggregate) carrying that rule label. One
    // emission == one enumerated body solution, the dataflow analogue of the
    // interpreter's firing counter.
    ASSERT_NE(sim.plan(), nullptr) << c.stem;
    std::map<std::string, double> emitted;
    auto tally = [&](const dataflow::Strand& s) {
      if (s.elements.empty()) return;
      const std::string name = "dataflow/elem/" + s.rule_label + "[d" +
                               std::to_string(s.delta_position) + "]/" +
                               s.elements.back().id + "/out";
      const auto* counter = metrics.find_counter(name);
      if (counter != nullptr) {
        emitted[s.rule_label] += static_cast<double>(counter->value());
      }
    };
    for (const auto& s : sim.plan()->strands) tally(s);
    for (const auto& agg : sim.plan()->aggregates) {
      for (const auto& s : agg.strands) tally(s);
    }
    for (const auto& rc : report.rules) {
      const auto it = emitted.find(rc.rule);
      const double measured = it == emitted.end() ? 0.0 : it->second;
      EXPECT_LE(measured, rc.firings.evaluate(env))
          << c.stem << " rule " << rc.rule << ": " << measured
          << " dataflow emissions exceed static bound "
          << rc.firings.to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// Threaded cluster: measured wire bytes vs the static byte bounds
// ---------------------------------------------------------------------------

TEST(CostBounds, ClusterWireBytesStayWithinStaticBounds) {
  for (const auto engine :
       {runtime::EngineKind::Interpreter, runtime::EngineKind::Dataflow}) {
    for (const auto& c : example_cases()) {
      const auto program = load_example(c.stem);
      const auto report = cost_report(runtime::localize(program));
      const auto base = facts(c.base);
      const auto env = measured_env(report, base);
      const double byte_bound = report.total_bytes.evaluate(env);

      obs::Registry metrics;
      net::ClusterOptions options;
      options.engine = engine;
      // Lossless in-process transport, fire-and-forget: the static model
      // bounds first transmissions, so keep retransmits out of the measure.
      options.reliability.enabled = false;
      options.metrics = &metrics;
      net::Cluster cluster(program, options);
      cluster.inject_all(base);
      const auto stats = cluster.run();
      EXPECT_TRUE(stats.quiesced) << c.stem;

      EXPECT_LE(static_cast<double>(stats.bytes_sent), byte_bound)
          << c.stem << ": " << stats.bytes_sent
          << " total wire bytes exceed static bound "
          << report.total_bytes.to_string();
      for (const auto& node : cluster.nodes()) {
        const auto* counter =
            metrics.find_counter("net/node/" + node + "/bytes_sent");
        const double measured =
            counter == nullptr ? 0.0 : static_cast<double>(counter->value());
        EXPECT_LE(measured, byte_bound)
            << c.stem << " node " << node << ": channel bytes exceed bound";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ND0019 witness: the cheaper order is real — applied by the planner where
// provably safe, same fixpoint, strictly less dataflow work
// ---------------------------------------------------------------------------

/// The written order scans every b-tuple per a-delta before the selective
/// c-probe can filter; the cheap order probes c's (S,X) key first. c's keys
/// functionally determine its third column, which is what makes the analyzer
/// rank the reorder strictly cheaper, and sel's all-column key is what makes
/// it provably safe to apply.
const char* kReorderProgram =
    "materialize(seed, infinity, infinity, keys(1)).\n"
    "materialize(a, infinity, infinity, keys(1,2)).\n"
    "materialize(b, infinity, infinity, keys(1,2)).\n"
    "materialize(c, infinity, infinity, keys(1,2)).\n"
    "materialize(sel, infinity, infinity, keys(1,2,3)).\n"
    "w1 sel(@S,X,Y) :- a(@S,X), b(@S,Y), c(@S,X,Y).\n";

std::vector<Tuple> reorder_facts(int n) {
  std::vector<Tuple> out;
  for (int i = 0; i < n; ++i) {
    const std::string x = "x" + std::to_string(i);
    out.push_back(ndlog::parse_fact("a(@n0," + x + ")"));
    out.push_back(ndlog::parse_fact("b(@n0," + x + ")"));
    out.push_back(ndlog::parse_fact("c(@n0," + x + "," + x + ")"));
  }
  return out;
}

std::string dataflow_fixpoint(const Program& program,
                              const std::vector<Tuple>& base, bool cost_order,
                              obs::Registry* metrics) {
  runtime::SimOptions options;
  options.engine = runtime::EngineKind::Dataflow;
  options.cost_order = cost_order;
  options.metrics = metrics;
  runtime::Simulator sim(program, options);
  sim.inject_all(base);
  const auto stats = sim.run();
  EXPECT_TRUE(stats.quiesced);
  std::ostringstream os;
  for (const auto& row : sim.merged_database().dump()) os << row << "\n";
  return os.str();
}

/// Join work for one rule: every tuple entering a post-delta element.
double join_inputs(const obs::Registry& metrics, const std::string& label) {
  double total = 0.0;
  const std::string prefix = "dataflow/elem/" + label + "[";
  for (const auto& [name, counter] : metrics.counters()) {
    if (name.rfind(prefix, 0) == 0 && name.size() > 3 &&
        name.compare(name.size() - 3, 3, "/in") == 0) {
      total += static_cast<double>(counter.value());
    }
  }
  return total;
}

TEST(Nd0019Witness, CheaperOrderKeepsFixpointAndReducesDataflowWork) {
  const auto program = ndlog::parse_program(kReorderProgram, "reorder");
  std::vector<Diagnostic> diags;
  const auto report = cost_report(program, &diags);
  ASSERT_TRUE(has_code(diags, "ND0019")) << ndlog::render_human(diags);
  const auto* rc = report.rule_at(0);
  ASSERT_NE(rc, nullptr);
  EXPECT_TRUE(rc->reorder_safe);
  EXPECT_NE(rc->best_order, rc->order);
  EXPECT_TRUE(ndlog::cost::cheaper(rc->best_solutions, rc->solutions));

  // The planner applies the cheap order (the body is genuinely permuted).
  const auto baseline = dataflow::compile(runtime::localize(program));
  dataflow::PlanOptions opts;
  opts.cost_order = true;
  const auto reordered = dataflow::compile(runtime::localize(program), opts);
  EXPECT_FALSE(baseline.cost_ordered);
  EXPECT_TRUE(reordered.cost_ordered);
  // The cheap order keeps the selective a-scan first and hoists the c-probe
  // ahead of the b-scan, so the permutation shows at body position 1.
  EXPECT_NE(ndlog::to_string(baseline.program.rules.at(0).body.at(1)),
            ndlog::to_string(reordered.program.rules.at(0).body.at(1)));

  // Same fixpoint, strictly less join work.
  const auto base = reorder_facts(12);
  obs::Registry written_metrics;
  obs::Registry cheap_metrics;
  const auto written = dataflow_fixpoint(program, base, false, &written_metrics);
  const auto cheap = dataflow_fixpoint(program, base, true, &cheap_metrics);
  EXPECT_EQ(written, cheap);
  EXPECT_NE(written.find("sel(n0,x0,x0)"), std::string::npos) << written;
  const double written_work = join_inputs(written_metrics, "w1");
  const double cheap_work = join_inputs(cheap_metrics, "w1");
  EXPECT_LT(cheap_work, written_work)
      << "cost order did not reduce join work: " << cheap_work << " vs "
      << written_work;
}

TEST(Nd0019Witness, UnsafeReorderIsReportedButNeverApplied) {
  // path_vector's r4 has the cheaper order, but bestPath's keys drop a
  // non-determined column (ND0017): applying it could change which tuple
  // wins the overwrite race, so the planner must leave the body alone and
  // only report ND0019.
  const auto program = load_example("path_vector");
  std::vector<Diagnostic> diags;
  const auto report = cost_report(program, &diags);
  ASSERT_TRUE(has_code(diags, "ND0019")) << ndlog::render_human(diags);
  // The report still names the cheaper order (that is what ND0019 prints);
  // only the planner gate below refuses to apply it.
  bool saw_unsafe_cheaper = false;
  for (const auto& rc : report.rules) {
    if (!rc.reorder_safe &&
        ndlog::cost::cheaper(rc.best_solutions, rc.solutions)) {
      EXPECT_NE(rc.best_order, rc.order) << rc.rule;
      saw_unsafe_cheaper = true;
    }
  }
  EXPECT_TRUE(saw_unsafe_cheaper);
  // plan_orders hands the planner only identity permutations here.
  for (const auto& perm :
       ndlog::cost::plan_orders(runtime::localize(program))) {
    for (std::size_t i = 0; i < perm.size(); ++i) EXPECT_EQ(perm[i], i);
  }
}

// ---------------------------------------------------------------------------
// ND0020 witness: the unbounded-message rule actually floods a budget that
// bounded programs respect
// ---------------------------------------------------------------------------

TEST(Nd0020Witness, UnboundedMessageRuleExhaustsEventBudgetOnACycle) {
  const auto dv = load_example("distance_vector");
  std::vector<Diagnostic> dv_diags;
  const auto dv_report = cost_report(runtime::localize(dv), &dv_diags);
  ASSERT_TRUE(has_code(dv_diags, "ND0020")) << ndlog::render_human(dv_diags);
  EXPECT_TRUE(dv_report.total_messages.unbounded);

  const auto cycle =
      facts({"link(@n0,n1,1)", "link(@n1,n2,1)", "link(@n2,n0,1)"});
  runtime::SimOptions options;
  options.max_events = 20000;
  {
    runtime::Simulator sim(dv, options);
    sim.inject_all(cycle);
    const auto stats = sim.run();
    EXPECT_FALSE(stats.quiesced);  // the amplification is real
  }
  // Same topology, same budget: reachable (no ND0020, bounded messages)
  // quiesces with room to spare.
  const auto reach = load_example("reachable");
  std::vector<Diagnostic> reach_diags;
  const auto reach_report = cost_report(runtime::localize(reach), &reach_diags);
  EXPECT_FALSE(has_code(reach_diags, "ND0020"));
  EXPECT_FALSE(reach_report.total_messages.unbounded);
  runtime::Simulator sim(reach, options);
  sim.inject_all(cycle);
  const auto stats = sim.run();
  EXPECT_TRUE(stats.quiesced);
}

// ---------------------------------------------------------------------------
// ND0021 witness: flagged aggregates really are incrementally maintainable
// ---------------------------------------------------------------------------

TEST(Nd0021Witness, FlaggedAggregatesPlanIncrementallyWithIdenticalFixpoint) {
  for (const char* stem :
       {"path_vector", "link_state", "spanning_tree", "policy_path_vector"}) {
    const auto program = load_example(stem);
    const auto localized = runtime::localize(program);
    std::vector<Diagnostic> diags;
    cost_report(localized, &diags);
    std::set<int> flagged;
    for (const auto& d : diags) {
      if (d.code == "ND0021") flagged.insert(d.rule_index);
    }
    ASSERT_FALSE(flagged.empty()) << stem;
    // The planner independently reaches the same verdict: every flagged rule
    // compiles to incremental view maintenance, not the recompute fallback.
    const auto plan = dataflow::compile(localized);
    for (const auto& agg : plan.aggregates) {
      if (flagged.count(static_cast<int>(agg.rule_index)) != 0) {
        EXPECT_TRUE(agg.incremental)
            << stem << " rule " << agg.rule_label << ": " << agg.mode_reason;
      }
    }
  }
  // And the incremental mode is exact: toggling the ablation knob cannot
  // change the fixpoint of the most aggregate-heavy example.
  const auto program = load_example("spanning_tree");
  auto base = facts(kTriangle);
  for (const auto& f : facts(kNodes)) base.push_back(f);
  auto run = [&](bool incremental) {
    runtime::SimOptions options;
    options.engine = runtime::EngineKind::Dataflow;
    options.incremental_aggregates = incremental;
    runtime::Simulator sim(program, options);
    sim.inject_all(base);
    EXPECT_TRUE(sim.run().quiesced);
    std::ostringstream os;
    for (const auto& row : sim.merged_database().dump()) os << row << "\n";
    return os.str();
  };
  EXPECT_EQ(run(true), run(false));
}

// ---------------------------------------------------------------------------
// Cost-guided planning stays bit-identical across the example matrix
// ---------------------------------------------------------------------------

TEST(CostOrderDifferential, MatrixFixpointsAreBitIdenticalWithCostOrder) {
  for (const auto& c : example_cases()) {
    const auto program = load_example(c.stem);
    const auto base = facts(c.base);
    auto fixpoint = [&](runtime::EngineKind engine, bool cost_order) {
      runtime::SimOptions options;
      options.engine = engine;
      options.cost_order = cost_order;
      runtime::Simulator sim(program, options);
      sim.inject_all(base);
      EXPECT_TRUE(sim.run().quiesced) << c.stem;
      std::ostringstream os;
      for (const auto& row : sim.merged_database().dump()) os << row << "\n";
      return os.str();
    };
    const auto interp = fixpoint(runtime::EngineKind::Interpreter, false);
    EXPECT_EQ(interp, fixpoint(runtime::EngineKind::Dataflow, false)) << c.stem;
    EXPECT_EQ(interp, fixpoint(runtime::EngineKind::Dataflow, true))
        << c.stem << ": cost-ordered plan changed the fixpoint";
  }
}

}  // namespace
}  // namespace fvn
