// Theorem-prover tests, centered on the paper's §3.1 demonstration: the
// route-optimality theorem bestPathStrong over the translated path-vector
// program, proved in 7 scripted steps (experiment E1), plus the supporting
// tactic machinery.
#include <gtest/gtest.h>

#include "core/protocols.hpp"
#include "logic/finite_model.hpp"
#include "ndlog/eval.hpp"
#include "prover/prover.hpp"
#include "translate/ndlog_to_logic.hpp"

namespace fvn {
namespace {

using logic::Formula;
using logic::FormulaPtr;
using logic::LTerm;
using logic::Sort;
using logic::TypedVar;
using ndlog::CmpOp;
using prover::Command;
using prover::Prover;

/// The paper's bestPathStrong theorem:
///   FORALL (S,D:Node)(C:Metric)(P:Path): bestPath(S,D,P,C) =>
///     NOT EXISTS (C2:Metric)(P2:Path): path(S,D,P2,C2) AND C2 < C
logic::Theorem best_path_strong() {
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto C = LTerm::var("C");
  auto P = LTerm::var("P");
  auto C2 = LTerm::var("C2");
  auto P2 = LTerm::var("P2");
  FormulaPtr premise = Formula::pred("bestPath", {S, D, P, C});
  FormulaPtr worse = Formula::exists(
      {TypedVar{"C2", Sort::Metric}, TypedVar{"P2", Sort::Path}},
      Formula::conj({Formula::pred("path", {S, D, P2, C2}),
                     Formula::cmp(CmpOp::Lt, C2, C)}));
  FormulaPtr statement = Formula::forall(
      {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node}, TypedVar{"C", Sort::Metric},
       TypedVar{"P", Sort::Path}},
      Formula::implies(premise, Formula::negate(worse)));
  return logic::Theorem{"bestPathStrong", statement};
}

/// The 7-step script of experiment E1 (mirrors the paper's "7 proof steps").
std::vector<Command> best_path_strong_script() {
  return {
      Command::skolem(),                 // 1: introduce S!,D!,C!,P!
      Command::flatten(),                // 2: premise & negated EXISTS to ante
      Command::skolem(),                 // 3: witnesses C2!,P2!
      Command::expand("bestPath"),       // 4: unfold r4's definition
      Command::expand("bestPathCost"),   // 5: unfold r3's min-semantics
      Command::inst({LTerm::var("P2!1"), LTerm::var("C2!1")}),  // 6
      Command::grind(),                  // 7: MP + arithmetic contradiction
  };
}

class BestPathProver : public ::testing::Test {
 protected:
  BestPathProver()
      : theory_(translate::to_logic(core::path_vector_program())), prover_(theory_) {}
  logic::Theory theory_;
  Prover prover_;
};

TEST_F(BestPathProver, TheoryContainsAllDerivedPredicates) {
  EXPECT_NE(theory_.find_definition("path"), nullptr);
  EXPECT_NE(theory_.find_definition("bestPathCost"), nullptr);
  EXPECT_NE(theory_.find_definition("bestPath"), nullptr);
  EXPECT_EQ(theory_.find_definition("link"), nullptr);  // base predicate
}

TEST_F(BestPathProver, PathDefinitionMatchesPaperShape) {
  const auto* def = theory_.find_definition("path");
  ASSERT_NE(def, nullptr);
  ASSERT_EQ(def->clauses.size(), 2u);  // r1 and r2
  // Rendering mentions the same ingredients as the paper's PVS snippet.
  const std::string text = def->to_string();
  EXPECT_NE(text.find("link(S,D,C)"), std::string::npos) << text;
  EXPECT_NE(text.find("f_init(S,D)"), std::string::npos) << text;
  EXPECT_NE(text.find("EXISTS"), std::string::npos) << text;
  EXPECT_NE(text.find("f_concatPath(S,P2)"), std::string::npos) << text;
}

TEST_F(BestPathProver, BestPathStrongProvedInSevenScriptedSteps) {
  auto result = prover_.prove(best_path_strong(), best_path_strong_script());
  EXPECT_TRUE(result.proved) << (result.open_goals.empty()
                                     ? result.failure_reason
                                     : result.open_goals.front().to_string());
  // E1: the scripted steps number 7, like the paper's proof.
  EXPECT_EQ(result.scripted_steps, 7u);
  EXPECT_LE(result.manual_steps(), 7u);
  // "a fraction of a second"
  EXPECT_LT(result.elapsed_seconds, 1.0);
}

TEST_F(BestPathProver, BestPathStrongAlsoProvedFullyAutomatically) {
  auto result = prover_.prove_auto(best_path_strong());
  EXPECT_TRUE(result.proved) << result.failure_reason;
  EXPECT_EQ(result.manual_steps(), 0u);
  EXPECT_GT(result.automated_steps(), 0u);
}

TEST_F(BestPathProver, FalseVariantIsNotProvable) {
  // Soundness check: flipping the inequality direction must NOT be provable.
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto C = LTerm::var("C");
  auto P = LTerm::var("P");
  auto C2 = LTerm::var("C2");
  auto P2 = LTerm::var("P2");
  FormulaPtr bogus = Formula::forall(
      {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node}, TypedVar{"C", Sort::Metric},
       TypedVar{"P", Sort::Path}},
      Formula::implies(
          Formula::pred("bestPath", {S, D, P, C}),
          Formula::negate(Formula::exists(
              {TypedVar{"C2", Sort::Metric}, TypedVar{"P2", Sort::Path}},
              Formula::conj({Formula::pred("path", {S, D, P2, C2}),
                             Formula::cmp(CmpOp::Gt, C2, C)})))));
  auto result = prover_.prove(logic::Theorem{"bestPathWeakBogus", bogus},
                              best_path_strong_script());
  EXPECT_FALSE(result.proved);
}

TEST_F(BestPathProver, CounterexampleFoundForFalseTheoremOnFiniteModel) {
  // "every path is a best path" is false; the finite-model search over a real
  // evaluation should produce a witness.
  ndlog::Evaluator eval;
  auto db = eval.run(core::path_vector_program(),
                     core::link_facts(core::random_topology(5, 4, 3)));
  logic::FiniteModel model;
  model.load_database(db.database);
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto C = LTerm::var("C");
  auto P = LTerm::var("P");
  FormulaPtr bogus = Formula::forall(
      {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node}, TypedVar{"P", Sort::Path},
       TypedVar{"C", Sort::Metric}},
      Formula::implies(Formula::pred("path", {S, D, P, C}),
                       Formula::pred("bestPath", {S, D, P, C})));
  auto cex = prover_.find_counterexample(logic::Theorem{"allPathsBest", bogus}, model);
  ASSERT_TRUE(cex.has_value());
  EXPECT_NE(cex->find("counterexample"), std::string::npos);
  // And the true theorem has none.
  auto none = prover_.find_counterexample(best_path_strong(), model);
  EXPECT_FALSE(none.has_value());
}

// ---------------------------------------------------------------------------
// Induction proofs over the path definition
// ---------------------------------------------------------------------------

TEST_F(BestPathProver, PathHeadIsSourceByInduction) {
  // path(S,D,P,C) => f_head(P) = S
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto P = LTerm::var("P");
  auto C = LTerm::var("C");
  FormulaPtr stmt = Formula::forall(
      {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node}, TypedVar{"P", Sort::Path},
       TypedVar{"C", Sort::Metric}},
      Formula::implies(Formula::pred("path", {S, D, P, C}),
                       Formula::eq(LTerm::func("f_head", {P}), S)));
  auto result = prover_.prove(logic::Theorem{"pathHeadIsSource", stmt},
                              {Command::induct("path"), Command::grind()});
  EXPECT_TRUE(result.proved) << (result.open_goals.empty()
                                     ? result.failure_reason
                                     : result.open_goals.front().to_string());
}

TEST_F(BestPathProver, PathLastIsDestinationByInduction) {
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto P = LTerm::var("P");
  auto C = LTerm::var("C");
  FormulaPtr stmt = Formula::forall(
      {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node}, TypedVar{"P", Sort::Path},
       TypedVar{"C", Sort::Metric}},
      Formula::implies(Formula::pred("path", {S, D, P, C}),
                       Formula::eq(LTerm::func("f_last", {P}), D)));
  auto result = prover_.prove(logic::Theorem{"pathLastIsDest", stmt},
                              {Command::induct("path"), Command::grind()});
  EXPECT_TRUE(result.proved) << (result.open_goals.empty()
                                     ? result.failure_reason
                                     : result.open_goals.front().to_string());
}

TEST_F(BestPathProver, PathSizeAtLeastTwoByInduction) {
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto P = LTerm::var("P");
  auto C = LTerm::var("C");
  FormulaPtr stmt = Formula::forall(
      {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node}, TypedVar{"P", Sort::Path},
       TypedVar{"C", Sort::Metric}},
      Formula::implies(Formula::pred("path", {S, D, P, C}),
                       Formula::cmp(CmpOp::Ge, LTerm::func("f_size", {P}),
                                    LTerm::constant_of(logic::Value::integer(2)))));
  auto result = prover_.prove(logic::Theorem{"pathSizeGe2", stmt},
                              {Command::induct("path"), Command::grind()});
  EXPECT_TRUE(result.proved) << (result.open_goals.empty()
                                     ? result.failure_reason
                                     : result.open_goals.front().to_string());
}

TEST_F(BestPathProver, PathCostPositiveWithLinkAxiom) {
  // With the axiom that link costs are >= 1, every path cost is >= 1.
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto C = LTerm::var("C");
  auto P = LTerm::var("P");
  Prover prover(theory_);
  prover.add_axiom(logic::Theorem{
      "linkCostPositive",
      Formula::forall({TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node},
                       TypedVar{"C", Sort::Metric}},
                      Formula::implies(Formula::pred("link", {S, D, C}),
                                       Formula::cmp(CmpOp::Ge, C,
                                                    LTerm::constant_of(
                                                        logic::Value::integer(1)))))});
  FormulaPtr stmt = Formula::forall(
      {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node}, TypedVar{"P", Sort::Path},
       TypedVar{"C", Sort::Metric}},
      Formula::implies(Formula::pred("path", {S, D, P, C}),
                       Formula::cmp(CmpOp::Ge, C,
                                    LTerm::constant_of(logic::Value::integer(1)))));
  auto result = prover.prove(logic::Theorem{"pathCostPositive", stmt},
                             {Command::induct("path"), Command::grind()});
  EXPECT_TRUE(result.proved) << (result.open_goals.empty()
                                     ? result.failure_reason
                                     : result.open_goals.front().to_string());
}

TEST_F(BestPathProver, BestPathImpliesPath) {
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto P = LTerm::var("P");
  auto C = LTerm::var("C");
  FormulaPtr stmt = Formula::forall(
      {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node}, TypedVar{"P", Sort::Path},
       TypedVar{"C", Sort::Metric}},
      Formula::implies(Formula::pred("bestPath", {S, D, P, C}),
                       Formula::pred("path", {S, D, P, C})));
  auto result = prover_.prove_auto(logic::Theorem{"bestPathImpliesPath", stmt});
  EXPECT_TRUE(result.proved) << result.failure_reason;
}

TEST_F(BestPathProver, BestPathCostUnique) {
  auto S = LTerm::var("S");
  auto D = LTerm::var("D");
  auto C1 = LTerm::var("C1");
  auto C2 = LTerm::var("C2");
  FormulaPtr stmt = Formula::forall(
      {TypedVar{"S", Sort::Node}, TypedVar{"D", Sort::Node}, TypedVar{"C1", Sort::Metric},
       TypedVar{"C2", Sort::Metric}},
      Formula::implies(Formula::conj({Formula::pred("bestPathCost", {S, D, C1}),
                                      Formula::pred("bestPathCost", {S, D, C2})}),
                       Formula::eq(C1, C2)));
  auto result = prover_.prove_auto(logic::Theorem{"bestPathCostUnique", stmt});
  EXPECT_TRUE(result.proved) << (result.open_goals.empty()
                                     ? result.failure_reason
                                     : result.open_goals.front().to_string());
}

}  // namespace
}  // namespace fvn
