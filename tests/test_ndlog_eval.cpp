// Integration tests for the NDlog engine on the paper's programs: the §2.2
// path-vector program, distance-vector (count-to-infinity divergence),
// link-state, reachability, and the staged policy path-vector.
#include <gtest/gtest.h>

#include "core/protocols.hpp"
#include "ndlog/eval.hpp"
#include "ndlog/parser.hpp"

namespace fvn {
namespace {

using core::link_facts;
using core::node_name;
using ndlog::Database;
using ndlog::EvalOptions;
using ndlog::Evaluator;
using ndlog::Tuple;
using ndlog::Value;

Tuple best_path(const std::string& s, const std::string& d,
                std::vector<std::string> path, std::int64_t cost) {
  std::vector<Value> p;
  for (auto& n : path) p.push_back(Value::addr(n));
  return Tuple("bestPath", {Value::addr(s), Value::addr(d), Value::list(std::move(p)),
                            Value::integer(cost)});
}

TEST(PathVectorEval, LineTopologyShortestPaths) {
  Evaluator eval;
  auto result = eval.run(core::path_vector_program(), link_facts(core::line_topology(4)));
  const auto& db = result.database;
  EXPECT_TRUE(db.contains(best_path("n0", "n3", {"n0", "n1", "n2", "n3"}, 3)));
  EXPECT_TRUE(db.contains(best_path("n3", "n0", {"n3", "n2", "n1", "n0"}, 3)));
  EXPECT_TRUE(db.contains(best_path("n0", "n1", {"n0", "n1"}, 1)));
  // 4 nodes, all pairs reachable: 12 best paths (ties impossible on a line).
  EXPECT_EQ(db.size("bestPath"), 12u);
}

TEST(PathVectorEval, PicksCheaperOfTwoRoutes) {
  // Triangle with one expensive direct edge: n0-n2 costs 10, n0-n1-n2 costs 2.
  std::vector<core::Link> links = {
      {"n0", "n1", 1}, {"n1", "n0", 1}, {"n1", "n2", 1},
      {"n2", "n1", 1}, {"n0", "n2", 10}, {"n2", "n0", 10},
  };
  Evaluator eval;
  auto result = eval.run(core::path_vector_program(), link_facts(links));
  EXPECT_TRUE(result.database.contains(best_path("n0", "n2", {"n0", "n1", "n2"}, 2)));
  EXPECT_FALSE(result.database.contains(best_path("n0", "n2", {"n0", "n2"}, 10)));
}

TEST(PathVectorEval, CycleAvoidanceTerminatesOnRing) {
  Evaluator eval;
  auto result = eval.run(core::path_vector_program(), link_facts(core::ring_topology(5)));
  // Every path is simple: at most 5 nodes.
  for (const auto& t : result.database.relation("path")) {
    EXPECT_LE(t.at(2).as_list().size(), 5u) << t.to_string();
  }
}

TEST(PathVectorEval, BestPathIsOptimalOnRandomGraphs) {
  // The route-optimality property of §3.1 (bestPathStrong), checked
  // empirically: no path tuple beats the bestPath cost.
  Evaluator eval;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto links = core::random_topology(8, 6, seed);
    auto result = eval.run(core::path_vector_program(), link_facts(links));
    const auto& db = result.database;
    for (const auto& best : db.relation("bestPath")) {
      for (const auto& p : db.relation("path")) {
        if (p.at(0) == best.at(0) && p.at(1) == best.at(1)) {
          EXPECT_LE(best.at(3).as_int(), p.at(3).as_int())
              << "bestPath " << best.to_string() << " beaten by " << p.to_string();
        }
      }
    }
  }
}

TEST(DistanceVectorEval, DivergesOnCyclicTopology) {
  // E2 (static shape): without a path vector, `hop` grows without bound on a
  // ring — the evaluator's divergence guard fires.
  Evaluator eval;
  EvalOptions options;
  options.max_iterations = 200;
  EXPECT_THROW(
      eval.run(core::distance_vector_program(), link_facts(core::ring_topology(3)), options),
      ndlog::DivergenceError);
}

TEST(DistanceVectorEval, BoundedVariantConverges) {
  Evaluator eval;
  auto result = eval.run(
      ndlog::parse_program(core::distance_vector_bounded_source(16), "dv_bounded"),
      link_facts(core::ring_topology(4)));
  const auto& db = result.database;
  // n0 -> n2 is two hops either way around the ring.
  bool found = false;
  for (const auto& t : db.relation("bestHopCost")) {
    if (t.at(0) == Value::addr("n0") && t.at(1) == Value::addr("n2")) {
      EXPECT_EQ(t.at(2).as_int(), 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LinkStateEval, FloodingReplicatesLsdbEverywhere) {
  Evaluator eval;
  auto result = eval.run(core::link_state_program(), link_facts(core::line_topology(4)));
  const auto& db = result.database;
  // 6 directed links, 4 nodes -> 24 lsdb entries after flooding.
  EXPECT_EQ(db.size("lsdb"), 24u);
}

TEST(LinkStateEval, LocalComputationMatchesPathVectorCosts) {
  Evaluator eval;
  auto links = core::random_topology(6, 4, 42);
  auto ls = eval.run(core::link_state_program(), link_facts(links));
  auto pv = eval.run(core::path_vector_program(), link_facts(links));
  // lsBestCost(@N,S,D,C): every node N agrees with path-vector's best cost.
  for (const auto& t : ls.database.relation("lsBestCost")) {
    const auto& s = t.at(1);
    const auto& d = t.at(2);
    for (const auto& b : pv.database.relation("bestPathCost")) {
      if (b.at(0) == s && b.at(1) == d) {
        EXPECT_EQ(t.at(3).as_int(), b.at(2).as_int())
            << "node " << t.at(0).to_string() << " disagrees for " << s.to_string()
            << "->" << d.to_string();
      }
    }
  }
}

TEST(ReachableEval, TransitiveClosure) {
  Evaluator eval;
  auto result = eval.run(core::reachable_program(), link_facts(core::line_topology(5)));
  // Bidirectional line: every node reaches every node, including itself
  // (out-and-back), so all 25 ordered pairs are derived.
  EXPECT_EQ(result.database.size("reachable"), 25u);
}

TEST(PolicyPathVector, ExportDenyFiltersRoutes) {
  // n0 - n1 - n2 line; n1 refuses to export routes to destination n2 toward
  // n0, so n0 never learns a route to n2.
  auto program = core::policy_path_vector_program();
  std::vector<Tuple> facts;
  for (std::size_t i = 0; i < 3; ++i) {
    facts.emplace_back("node", std::vector<Value>{Value::addr(node_name(i))});
  }
  for (const auto& t : link_facts(core::line_topology(3))) facts.push_back(t);
  for (const auto& pair : std::vector<std::pair<std::string, std::string>>{
           {"n0", "n1"}, {"n1", "n0"}, {"n1", "n2"}, {"n2", "n1"}}) {
    facts.emplace_back("importPref",
                       std::vector<Value>{Value::addr(pair.first), Value::addr(pair.second),
                                          Value::integer(100)});
  }
  facts.emplace_back("exportDeny", std::vector<Value>{Value::addr("n1"), Value::addr("n0"),
                                                      Value::addr("n2")});
  Evaluator eval;
  auto result = eval.run(program, facts);
  for (const auto& t : result.database.relation("bestRoute")) {
    EXPECT_FALSE(t.at(0) == Value::addr("n0") && t.at(1) == Value::addr("n2"))
        << "filtered route leaked: " << t.to_string();
  }
  // n2 still reaches n0 (filter was one-directional).
  bool n2_reaches_n0 = false;
  for (const auto& t : result.database.relation("bestRoute")) {
    if (t.at(0) == Value::addr("n2") && t.at(1) == Value::addr("n0")) n2_reaches_n0 = true;
  }
  EXPECT_TRUE(n2_reaches_n0);
}

TEST(PolicyPathVector, LocalPrefBeatsCost) {
  // n0 has two routes to n3: direct (cost 1, lp 50) and via n1 (cost > 1 but
  // lp 200). Lexicographic selection must pick the high-lp route.
  auto program = core::policy_path_vector_program();
  std::vector<Tuple> facts;
  for (const auto& n : {"n0", "n1", "n3"}) {
    facts.emplace_back("node", std::vector<Value>{Value::addr(n)});
  }
  std::vector<core::Link> links = {
      {"n0", "n3", 1}, {"n3", "n0", 1}, {"n0", "n1", 1},
      {"n1", "n0", 1}, {"n1", "n3", 1}, {"n3", "n1", 1},
  };
  for (const auto& t : link_facts(links)) facts.push_back(t);
  auto pref = [&](const char* at, const char* nbr, std::int64_t lp) {
    facts.emplace_back("importPref", std::vector<Value>{Value::addr(at), Value::addr(nbr),
                                                        Value::integer(lp)});
  };
  pref("n0", "n3", 50);
  pref("n0", "n1", 200);
  pref("n1", "n0", 100);
  pref("n1", "n3", 100);
  pref("n3", "n0", 100);
  pref("n3", "n1", 100);
  Evaluator eval;
  auto result = eval.run(program, facts);
  bool found = false;
  for (const auto& t : result.database.relation("bestRoute")) {
    if (t.at(0) == Value::addr("n0") && t.at(1) == Value::addr("n3")) {
      found = true;
      EXPECT_EQ(t.at(4).as_int(), 200) << t.to_string();
      EXPECT_EQ(t.at(2).as_list().size(), 3u) << t.to_string();  // n0,n1,n3
    }
  }
  EXPECT_TRUE(found);
}

TEST(SemiNaive, MatchesNaiveOnRandomGraphs) {
  // E8 ablation correctness: semi-naive and naive evaluation derive the same
  // database.
  Evaluator eval;
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    auto links = core::random_topology(7, 5, seed);
    EvalOptions semi;
    semi.semi_naive = true;
    EvalOptions naive;
    naive.semi_naive = false;
    auto a = eval.run(core::path_vector_program(), link_facts(links), semi);
    auto b = eval.run(core::path_vector_program(), link_facts(links), naive);
    EXPECT_EQ(a.database.dump(), b.database.dump()) << "seed " << seed;
  }
}

TEST(SemiNaive, DoesLessJoinWorkThanNaive) {
  Evaluator eval;
  auto links = core::random_topology(10, 8, 7);
  EvalOptions semi;
  semi.semi_naive = true;
  EvalOptions naive;
  naive.semi_naive = false;
  auto a = eval.run(core::path_vector_program(), link_facts(links), semi);
  auto b = eval.run(core::path_vector_program(), link_facts(links), naive);
  EXPECT_LT(a.stats.rule_firings, b.stats.rule_firings);
}

// ---------------------------------------------------------------------------
// match_atom restore-on-failure semantics
// ---------------------------------------------------------------------------

TEST(MatchAtom, RollsBackAddedBindingsOnFailure) {
  const auto& builtins = ndlog::BuiltinRegistry::standard();
  ndlog::Atom atom;
  atom.predicate = "p";
  atom.args = {ndlog::Term::var("X"), ndlog::Term::constant_of(Value::integer(1))};
  ndlog::Bindings env;
  env.emplace("Z", Value::integer(9));
  // p(7, 2): X binds to 7, then 1 != 2 fails — X must be gone afterwards.
  EXPECT_FALSE(ndlog::match_atom(atom, Tuple("p", {Value::integer(7), Value::integer(2)}),
                                 env, builtins));
  EXPECT_EQ(env.size(), 1u);
  EXPECT_EQ(env.count("X"), 0u);
  EXPECT_EQ(env.at("Z").as_int(), 9);
}

TEST(MatchAtom, ReportsAddedKeysOnSuccess) {
  const auto& builtins = ndlog::BuiltinRegistry::standard();
  ndlog::Atom atom;
  atom.predicate = "p";
  atom.args = {ndlog::Term::var("X"), ndlog::Term::var("Y")};
  ndlog::Bindings env;
  env.emplace("X", Value::integer(7));  // pre-bound: must NOT be reported
  std::vector<std::string> added;
  EXPECT_TRUE(ndlog::match_atom(atom, Tuple("p", {Value::integer(7), Value::integer(3)}),
                                env, builtins, &added));
  ASSERT_EQ(added.size(), 1u);
  EXPECT_EQ(added[0], "Y");
  EXPECT_EQ(env.at("Y").as_int(), 3);
  // Rolling back what was reported restores the original environment.
  for (const auto& key : added) env.erase(key);
  EXPECT_EQ(env.size(), 1u);
  EXPECT_EQ(env.at("X").as_int(), 7);
}

TEST(MatchAtom, PreexistingBindingSurvivesConflict) {
  const auto& builtins = ndlog::BuiltinRegistry::standard();
  ndlog::Atom atom;
  atom.predicate = "p";
  atom.args = {ndlog::Term::var("X")};
  ndlog::Bindings env;
  env.emplace("X", Value::integer(7));
  // X=7 conflicts with p(8): failure must leave the caller's binding intact.
  EXPECT_FALSE(ndlog::match_atom(atom, Tuple("p", {Value::integer(8)}), env, builtins));
  EXPECT_EQ(env.at("X").as_int(), 7);
}

// ---------------------------------------------------------------------------
// DivergenceError diagnostics
// ---------------------------------------------------------------------------

TEST(Divergence, ErrorCarriesBudgetDeltaAndStats) {
  auto program = ndlog::parse_program(R"(
    materialize(n, infinity, infinity, keys(1,2)).
    c1 n(@X,Y+1) :- n(@X,Y).
  )");
  Evaluator eval;
  EvalOptions options;
  options.max_iterations = 5;
  const std::vector<Tuple> facts = {ndlog::parse_fact("n(@a,0)")};
  try {
    eval.run(program, facts, options);
    FAIL() << "expected DivergenceError";
  } catch (const ndlog::DivergenceError& e) {
    EXPECT_EQ(e.budget(), 5u);
    EXPECT_GE(e.last_delta_size(), 1u);
    EXPECT_GE(e.stats().iterations, 5u);
    EXPECT_GT(e.stats().rule_firings, 0u);
    EXPECT_GT(e.stats().tuples_derived, 0u);
    const std::string message = e.what();
    EXPECT_NE(message.find("iteration budget=5"), std::string::npos) << message;
    EXPECT_NE(message.find("last round delta="), std::string::npos) << message;
    EXPECT_NE(message.find("rule_firings="), std::string::npos) << message;
  }
  // Naive mode diverges through the same diagnostic path.
  options.semi_naive = false;
  EXPECT_THROW(eval.run(program, facts, options), ndlog::DivergenceError);
}

// ---------------------------------------------------------------------------
// EvalStats consistency across evaluation modes
// ---------------------------------------------------------------------------

TEST(EvalModes, DerivationsAndCountersAgreeAcrossModes) {
  auto program = core::path_vector_program();
  auto facts = link_facts(core::ring_topology(5));
  auto run_mode = [&](bool semi, bool index) {
    Evaluator eval;
    EvalOptions options;
    options.semi_naive = semi;
    options.use_index = index;
    return eval.run(program, facts, options);
  };
  auto indexed = run_mode(true, true);
  auto scan = run_mode(true, false);
  auto naive = run_mode(false, true);
  auto naive_scan = run_mode(false, false);

  // Every mode derives the same database.
  EXPECT_EQ(indexed.database.dump(), scan.database.dump());
  EXPECT_EQ(indexed.database.dump(), naive.database.dump());
  EXPECT_EQ(indexed.database.dump(), naive_scan.database.dump());
  EXPECT_EQ(indexed.stats.tuples_derived, scan.stats.tuples_derived);
  EXPECT_EQ(indexed.stats.tuples_derived, naive.stats.tuples_derived);

  // Index probing is an access-path choice: it must find exactly the body
  // solutions a full scan finds, never more or fewer.
  EXPECT_EQ(indexed.stats.rule_firings, scan.stats.rule_firings);
  EXPECT_EQ(naive.stats.rule_firings, naive_scan.stats.rule_firings);
  // ...while scanning at least as many tuples.
  EXPECT_LE(indexed.stats.join_probes, scan.stats.join_probes);
  EXPECT_GT(indexed.stats.join_probes, 0u);
}

}  // namespace
}  // namespace fvn
