// fvn::serve tests (ctest label `serve`, also run under ASan/TSan by
// scripts/check.sh):
//
//   - mtrie semantics: normalization, LPM, row multisets, path pruning
//   - randomized differential fuzz of Mtrie/FrozenTrie against the
//     LinearRoutes oracle (10k ops x 3 seeds — the NFOS "exact LPM" bar)
//   - interner copy-on-write tables and EncodedVal round trips
//   - ServeSpec parsing against a program catalog
//   - plane projection == the simulator's fixpoint database, per node
//   - the concurrent cluster feed reaching the same snapshot
//   - epoch reclamation: a held lease blocks reclamation, releasing admits it
//   - churn: reader threads never observe a torn snapshot (checksums match,
//     epochs are monotone) while the writer retracts/installs and publishes
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <random>
#include <set>
#include <thread>

#include "core/protocols.hpp"
#include "ndlog/parser.hpp"
#include "net/cluster.hpp"
#include "runtime/simulator.hpp"
#include "serve/plane.hpp"

namespace fvn {
namespace {

using serve::EncodedVal;
using serve::Key;
using serve::Row;

Row int_row(std::int64_t v) {
  return Row{EncodedVal{EncodedVal::Tag::Int, static_cast<std::uint64_t>(v)}};
}

// ---------------------------------------------------------------------------
// Key and Mtrie semantics
// ---------------------------------------------------------------------------

TEST(ServeKey, NormalizationMasksDontCareBits) {
  const Key a = Key::make(0x0A000007, 8);  // 10.0.0.7/8
  const Key b = Key::make(0x0A000000, 8);  // 10.0.0.0/8
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.prefix, 0x0A000000u);
  EXPECT_TRUE(a.matches(0x0AFFFFFF));
  EXPECT_FALSE(a.matches(0x0B000000));
  // len 0 is the default route: matches everything, masks to 0.
  const Key def = Key::make(0xDEADBEEF, 0);
  EXPECT_EQ(def.prefix, 0u);
  EXPECT_TRUE(def.matches(0x12345678));
}

TEST(ServeMtrie, LongestPrefixWins) {
  serve::Mtrie trie;
  EXPECT_TRUE(trie.insert(Key::make(0, 0), int_row(1)));            // default
  EXPECT_TRUE(trie.insert(Key::make(0x0A000000, 8), int_row(2)));   // 10/8
  EXPECT_TRUE(trie.insert(Key::make(0x0A010000, 16), int_row(3)));  // 10.1/16
  EXPECT_TRUE(trie.insert(Key::make(0x0A010203, 32), int_row(4)));  // host

  auto m = trie.lookup(0x0A010203);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->key.len, 32);
  EXPECT_EQ((*m->rows)[0], int_row(4));

  m = trie.lookup(0x0A010204);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->key.len, 16);

  m = trie.lookup(0x0A990000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->key.len, 8);

  m = trie.lookup(0x0B000000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->key.len, 0);  // falls through to the default route
}

TEST(ServeMtrie, RowsAreDuplicateFreeSortedSets) {
  serve::Mtrie trie;
  const Key k = Key::make(0x01020304, 32);
  EXPECT_TRUE(trie.insert(k, int_row(7)));
  EXPECT_FALSE(trie.insert(k, int_row(7)));  // exact duplicate rejected
  EXPECT_TRUE(trie.insert(k, int_row(3)));
  EXPECT_EQ(trie.entries(), 1u);
  EXPECT_EQ(trie.routes(), 2u);
  const auto* rows = trie.exact(k);
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].bits, 3u);  // sorted
  // Removing one row keeps the entry; removing the last prunes it.
  EXPECT_TRUE(trie.remove(k, int_row(7)));
  EXPECT_FALSE(trie.remove(k, int_row(7)));
  EXPECT_EQ(trie.routes(), 1u);
  EXPECT_TRUE(trie.remove(k, int_row(3)));
  EXPECT_EQ(trie.entries(), 0u);
  EXPECT_FALSE(trie.lookup(0x01020304).has_value());
}

TEST(ServeMtrie, RemovePrunesOnlyTheDeadTail) {
  serve::Mtrie trie;
  trie.insert(Key::make(0x80000000, 1), int_row(1));
  trie.insert(Key::make(0xFF000000, 8), int_row(2));
  ASSERT_TRUE(trie.remove(Key::make(0xFF000000, 8), int_row(2)));
  // The /1 entry on the shared path must survive the /8 removal.
  auto m = trie.lookup(0xFF123456);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->key.len, 1);
}

// ---------------------------------------------------------------------------
// Differential fuzz against the linear oracle
// ---------------------------------------------------------------------------

TEST(ServeMtrieFuzz, MatchesLinearOracle10kOpsX3Seeds) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    std::mt19937_64 rng(seed);
    serve::Mtrie trie;
    serve::LinearRoutes oracle;
    // Keys from a deliberately-colliding pool so removes hit often and
    // prefixes nest: 64 base prefixes x 5 lengths, 4 possible rows.
    auto random_key = [&rng]() {
      static const std::uint8_t lens[] = {0, 8, 16, 24, 32};
      const std::uint32_t base = static_cast<std::uint32_t>(rng()) & 0x3F3F3F3Fu;
      return Key::make(base, lens[rng() % 5]);
    };
    for (int op = 0; op < 10000; ++op) {
      const Key key = random_key();
      const Row row = int_row(static_cast<std::int64_t>(rng() % 4));
      if (rng() % 2 == 0) {
        EXPECT_EQ(trie.insert(key, row), oracle.insert(key, row));
      } else {
        EXPECT_EQ(trie.remove(key, row), oracle.remove(key, row));
      }
      if (op % 16 == 0) {
        ASSERT_EQ(trie.routes(), oracle.routes());
        for (int probe = 0; probe < 32; ++probe) {
          const auto addr = static_cast<std::uint32_t>(rng());
          const auto got = trie.lookup(addr);
          const auto want = oracle.lookup(addr);
          ASSERT_EQ(got.has_value(), want.has_value()) << "addr " << addr;
          if (got.has_value()) {
            ASSERT_EQ(got->key, want->key) << "addr " << addr;
            ASSERT_EQ(*got->rows, *want->rows) << "addr " << addr;
          }
        }
      }
    }
    // The frozen form must agree with both at the end state, exactly.
    const serve::FrozenTrie frozen(trie);
    EXPECT_EQ(frozen.routes(), oracle.routes());
    for (int probe = 0; probe < 2048; ++probe) {
      const auto addr = static_cast<std::uint32_t>(rng());
      const auto got = frozen.lookup(addr);
      const auto want = oracle.lookup(addr);
      ASSERT_EQ(got.has_value(), want.has_value()) << "addr " << addr;
      if (got.has_value()) {
        ASSERT_EQ(got->key, want->key);
        ASSERT_EQ(std::vector<Row>(got->rows, got->rows + got->count),
                  *want->rows);
      }
    }
  }
}

TEST(ServeFrozen, ChecksumIsContentDeterministic) {
  serve::Mtrie a;
  serve::Mtrie b;
  // Same content, different insertion order -> same checksum.
  a.insert(Key::make(0x0A000000, 8), int_row(1));
  a.insert(Key::make(0x0B000000, 8), int_row(2));
  b.insert(Key::make(0x0B000000, 8), int_row(2));
  b.insert(Key::make(0x0A000000, 8), int_row(1));
  EXPECT_EQ(serve::FrozenTrie(a).checksum(), serve::FrozenTrie(b).checksum());
  b.insert(Key::make(0x0C000000, 8), int_row(3));
  EXPECT_NE(serve::FrozenTrie(a).checksum(), serve::FrozenTrie(b).checksum());
}

// ---------------------------------------------------------------------------
// Interner + EncodedVal
// ---------------------------------------------------------------------------

TEST(ServeIntern, DenseIdsAndCopyOnWriteTables) {
  serve::Interner interner;
  EXPECT_EQ(interner.intern("n1"), 0u);
  EXPECT_EQ(interner.intern("n2"), 1u);
  EXPECT_EQ(interner.intern("n1"), 0u);  // dedupe
  const auto t1 = interner.snapshot();
  const auto t2 = interner.snapshot();
  EXPECT_EQ(t1.get(), t2.get());  // cached until growth
  EXPECT_EQ(interner.intern("n3"), 2u);
  const auto t3 = interner.snapshot();
  EXPECT_NE(t1.get(), t3.get());
  // The old table is immutable: still two entries.
  EXPECT_EQ(t1->size(), 2u);
  EXPECT_EQ(t3->size(), 3u);
  EXPECT_EQ(t3->text_of(2), "n3");
  EXPECT_FALSE(t1->find("n3").has_value());
  ASSERT_TRUE(t3->find("n3").has_value());
}

TEST(ServeIntern, EncodedValRoundTrip) {
  serve::Interner interner;
  const auto check = [&](const ndlog::Value& v, const std::string& expect) {
    const EncodedVal e = serve::encode_value(v, interner);
    EXPECT_EQ(serve::decode_value(e, *interner.snapshot()), expect);
  };
  check(ndlog::Value::integer(42), "42");
  check(ndlog::Value::addr("n7"), "n7");
  check(ndlog::Value::str("hello"), "hello");
  check(ndlog::Value::boolean(true), "true");
  // Equal addresses encode to the identical id (the whole point).
  const auto a = serve::encode_value(ndlog::Value::addr("n7"), interner);
  const auto b = serve::encode_value(ndlog::Value::str("n7"), interner);
  EXPECT_EQ(a, b);
  const auto c = serve::encode_value(ndlog::Value::addr("n8"), interner);
  EXPECT_NE(a, c);
}

// ---------------------------------------------------------------------------
// ServeSpec parsing
// ---------------------------------------------------------------------------

TEST(ServeSpec, ParsesDefaultAndRoleMappings) {
  const auto catalog =
      ndlog::Catalog::from_program(core::path_vector_program());
  // Default: first non-location column is dst, rest unlabeled payload.
  const auto plain = serve::ServeSpec::parse("bestPath", catalog);
  EXPECT_EQ(plain.predicate, "bestPath");
  EXPECT_EQ(plain.dst_col, 1u);
  EXPECT_EQ(plain.value_cols, (std::vector<std::size_t>{2, 3}));
  // Role list, absolute columns: bestPath(@S, D, P, C).
  const auto spec = serve::ServeSpec::parse("bestPath:dst,nexthop,cost", catalog);
  EXPECT_EQ(spec.dst_col, 1u);
  EXPECT_EQ(spec.value_cols, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(spec.labels, (std::vector<std::string>{"nexthop", "cost"}));
  // Skips drop columns.
  const auto skip = serve::ServeSpec::parse("bestPath:dst,_,cost", catalog);
  EXPECT_EQ(skip.value_cols, (std::vector<std::size_t>{3}));

  EXPECT_THROW(serve::ServeSpec::parse("nosuch", catalog), serve::ServeError);
  EXPECT_THROW(serve::ServeSpec::parse("bestPath:dst", catalog),
               serve::ServeError);  // role/arity mismatch
  EXPECT_THROW(serve::ServeSpec::parse("bestPath:dst,dst,cost", catalog),
               serve::ServeError);  // duplicate dst
  EXPECT_THROW(serve::ServeSpec::parse("bestPath:nexthop,_,cost", catalog),
               serve::ServeError);  // no dst
}

// ---------------------------------------------------------------------------
// Plane projection == simulator fixpoint
// ---------------------------------------------------------------------------

serve::ServePlane make_path_vector_plane() {
  const auto catalog =
      ndlog::Catalog::from_program(core::path_vector_program());
  return serve::ServePlane(
      serve::ServeSpec::parse("bestPath:dst,nexthop,cost", catalog));
}

TEST(ServePlane, SimulatorFeedProjectsTheFixpointExactly) {
  auto plane = make_path_vector_plane();
  serve::Feed feed(plane);  // publish at delta-round (virtual time) boundaries

  runtime::SimOptions options;
  options.tuple_events = feed.hook();
  runtime::Simulator sim(core::path_vector_program(), options);
  sim.inject_all(core::link_facts(core::line_topology(8)));
  // A shortcut arriving well after the line converges: the n0<->n7 routes
  // (and everything relayed through them) improve, so bests are overwritten
  // and the feed must retract the stale routes from the trie.
  sim.inject_all(core::link_facts(
                     {core::Link{"n0", "n7", 1}, core::Link{"n7", "n0", 1}}),
                 10.0);
  const auto stats = sim.run();
  ASSERT_TRUE(stats.quiesced);
  feed.finish();

  // Convergence produced interim bests that were overwritten: the feed must
  // have published more than the final epoch and reclaimed the retired ones.
  const auto s = plane.stats();
  EXPECT_GT(s.epochs_published, 1u);
  EXPECT_GT(s.removes, 0u);
  EXPECT_EQ(s.snapshots_reclaimed, s.epochs_published);  // no readers active

  // Exactness: per node, the served table answers every bestPath row of the
  // simulator's database, and the route count matches the database total.
  std::size_t expected_routes = 0;
  for (const auto& node : sim.nodes()) {
    for (const auto& tuple : sim.database(node).relation("bestPath")) {
      ++expected_routes;
      const std::string dst = tuple.at(1).to_string();
      const std::string answer = plane.query(node, dst);
      EXPECT_EQ(answer.rfind(dst + " ", 0), 0u) << answer;
      EXPECT_NE(answer.find("cost=" + tuple.at(3).to_string()),
                std::string::npos)
          << node << " " << dst << ": " << answer;
    }
  }
  EXPECT_EQ(plane.current().routes, expected_routes);
  EXPECT_GT(expected_routes, 0u);
  // The published checksum is recomputable from the published content.
  EXPECT_EQ(serve::recompute_checksum(plane.current()),
            plane.current().checksum);
  // Version witnesses the applied prefix: every install/retract was folded.
  EXPECT_EQ(plane.current().version, s.applied);
}

TEST(ServePlane, ClusterFeedReachesTheSameSnapshot) {
  // Same program on the threaded cluster: events arrive concurrently from
  // node threads through the thread-safe feed; the final forced publish must
  // equal the merged fixpoint projection. (Runs under TSan in check.sh.)
  auto plane = make_path_vector_plane();
  serve::Feed::Options fo;
  fo.publish_on_time_advance = false;  // node clocks are not comparable
  fo.publish_every = 16;
  fo.thread_safe = true;
  serve::Feed feed(plane, fo);

  net::ClusterOptions options;
  options.tuple_events = feed.hook();
  net::Cluster cluster(core::path_vector_program(), options);
  cluster.inject_all(core::link_facts(core::line_topology(6)));
  const auto stats = cluster.run();
  ASSERT_TRUE(stats.quiesced);
  feed.finish();

  std::size_t expected_routes = 0;
  for (const auto& node : cluster.nodes()) {
    for (const auto& tuple : cluster.database(node).relation("bestPath")) {
      ++expected_routes;
      const std::string dst = tuple.at(1).to_string();
      const std::string answer = plane.query(node, dst);
      EXPECT_NE(answer.find("cost=" + tuple.at(3).to_string()),
                std::string::npos)
          << node << " " << dst << ": " << answer;
    }
  }
  EXPECT_EQ(plane.current().routes, expected_routes);
  EXPECT_GT(expected_routes, 0u);
  EXPECT_EQ(serve::recompute_checksum(plane.current()),
            plane.current().checksum);
}

// ---------------------------------------------------------------------------
// Epoch reclamation
// ---------------------------------------------------------------------------

TEST(ServeEpochs, HeldLeaseBlocksReclamationReleaseAdmitsIt) {
  auto plane = make_path_vector_plane();
  auto reader = plane.register_reader();
  {
    const auto lease = reader.acquire();
    EXPECT_EQ(lease->epoch, 0u);  // the initial empty snapshot
    plane.publish(/*force=*/true);
    plane.publish(/*force=*/true);
    // The reader still holds epoch 0: nothing may be freed.
    EXPECT_EQ(plane.stats().snapshots_reclaimed, 0u);
    EXPECT_EQ(plane.stats().retired_live, 2u);
    // The lease keeps answering from its pinned (empty) snapshot.
    EXPECT_FALSE(reader.lookup(lease, 0, 42).hit);
  }
  plane.publish(/*force=*/true);
  EXPECT_EQ(plane.stats().snapshots_reclaimed, 3u);
  EXPECT_EQ(plane.stats().retired_live, 0u);
  // A fresh lease sees the latest epoch.
  EXPECT_EQ(reader.acquire()->epoch, 3u);
}

// ---------------------------------------------------------------------------
// Churn: no torn reads
// ---------------------------------------------------------------------------

TEST(ServeChurn, ReadersAlwaysObserveAPublishedConsistentSnapshot) {
  // A plane churned directly (no simulator): the writer flips routes and
  // publishes; readers continuously verify that everything reachable from a
  // lease hashes to the published checksum and that epochs never go back.
  const auto program = ndlog::parse_program(R"(
    materialize(route, infinity, infinity, keys(1,2)).
    r1 route(@N,D,C) :- route(@N,D,C).
  )");
  const auto catalog = ndlog::Catalog::from_program(program);
  serve::ServePlane plane(serve::ServeSpec::parse("route:dst,cost", catalog));

  const auto route = [](int node, int dst, int cost) {
    return ndlog::Tuple("route",
                        {ndlog::Value::addr("n" + std::to_string(node)),
                         ndlog::Value::integer(dst),
                         ndlog::Value::integer(cost)});
  };
  // Seed 4 nodes x 32 dsts and publish the base snapshot.
  for (int n = 0; n < 4; ++n) {
    for (int d = 0; d < 32; ++d) {
      plane.apply("install", "n" + std::to_string(n), route(n, d, d % 7));
    }
  }
  plane.publish(true);

  constexpr int kReaders = 2;
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::atomic<bool> regressed{false};
  std::atomic<std::uint64_t> verified{0};
  std::vector<std::thread> pool;
  for (int r = 0; r < kReaders; ++r) {
    pool.emplace_back([&plane, &stop, &torn, &regressed, &verified, r]() {
      auto reader = plane.register_reader();
      std::mt19937_64 rng(1000 + static_cast<std::uint64_t>(r));
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto lease = reader.acquire();
        if (lease->epoch < last_epoch) regressed.store(true);
        last_epoch = lease->epoch;
        // Full content verification on EVERY acquire — the strongest
        // torn-read check we can make.
        if (serve::recompute_checksum(*lease) != lease->checksum) {
          torn.store(true);
          stop.store(true);
        }
        verified.fetch_add(1, std::memory_order_relaxed);
        for (int i = 0; i < 16; ++i) {
          reader.lookup(lease, static_cast<serve::Interner::Id>(rng() % 4),
                        static_cast<std::uint32_t>(rng() % 40));
        }
      }
    });
  }

  // Writer: 4000 churn ops (retract+install with a changed cost), publishing
  // every 4 ops so retirement and reclamation run hot under the readers.
  std::mt19937_64 rng(7);
  for (int op = 0; op < 4000 && !stop.load(std::memory_order_relaxed); ++op) {
    const int n = static_cast<int>(rng() % 4);
    const int d = static_cast<int>(rng() % 32);
    plane.apply("retract", "n" + std::to_string(n), route(n, d, d % 7));
    plane.apply("install", "n" + std::to_string(n), route(n, d, d % 7));
    if (op % 4 == 0) plane.publish();
  }
  plane.publish(true);
  stop.store(true);
  for (auto& t : pool) t.join();

  EXPECT_FALSE(torn.load()) << "a reader observed a torn snapshot";
  EXPECT_FALSE(regressed.load()) << "a reader observed a non-monotone epoch";
  EXPECT_GT(verified.load(), 0u);
  EXPECT_GT(plane.stats().lookups, 0u);
  EXPECT_GT(plane.stats().epochs_published, 100u);
  // With all leases released, a final publish reclaims every retiree.
  plane.publish(true);
  EXPECT_EQ(plane.stats().retired_live, 0u);
  // Routes are unchanged by retract+install churn.
  EXPECT_EQ(plane.current().routes, 4u * 32u);
}

}  // namespace
}  // namespace fvn
