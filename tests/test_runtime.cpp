// Distributed-runtime tests: localization rewrite, distributed-vs-centralized
// agreement for the paper's protocols, soft-state expiry and refresh, message
// loss, runtime monitors, and the E5 convergence observables.
#include <gtest/gtest.h>

#include "core/protocols.hpp"
#include "ndlog/eval.hpp"
#include "runtime/localize.hpp"
#include "runtime/simulator.hpp"

namespace fvn {
namespace {

using core::link_facts;
using ndlog::Tuple;
using ndlog::Value;
using runtime::SimOptions;
using runtime::Simulator;

TEST(Localize, PathVectorR2IsRewritten) {
  auto program = core::path_vector_program();
  // r2 spans @S and @Z.
  bool saw_nonlocal = false;
  for (const auto& r : program.rules) {
    if (!runtime::is_local_rule(r)) saw_nonlocal = true;
  }
  EXPECT_TRUE(saw_nonlocal);
  auto localized = runtime::localize(program);
  for (const auto& r : localized.rules) {
    EXPECT_TRUE(runtime::is_local_rule(r)) << r.to_string();
  }
  // One ship rule was generated (for r2's link atom).
  EXPECT_EQ(localized.rules.size(), program.rules.size() + 1);
}

TEST(Localize, LocalProgramPassesThrough) {
  auto program = core::policy_path_vector_program();
  auto localized = runtime::localize(program);
  EXPECT_EQ(localized.rules.size(), program.rules.size());
}

TEST(Localize, LocalizedProgramComputesSameResultCentrally) {
  // The rewrite is semantics-preserving: centralized evaluation of original
  // and localized programs agree on the original predicates.
  ndlog::Evaluator eval;
  auto links = link_facts(core::random_topology(6, 4, 99));
  auto a = eval.run(core::path_vector_program(), links);
  auto b = eval.run(runtime::localize(core::path_vector_program()), links);
  for (const auto& pred : {"path", "bestPathCost", "bestPath"}) {
    EXPECT_EQ(ndlog::sorted_strings(a.database.relation(pred)),
              ndlog::sorted_strings(b.database.relation(pred)))
        << pred;
  }
}

TEST(Simulator, PathVectorConvergesToCentralizedResult) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto links = link_facts(core::random_topology(6, 3, seed));
    ndlog::Evaluator eval;
    auto central = eval.run(core::path_vector_program(), links);

    Simulator sim(core::path_vector_program(), SimOptions{});
    sim.inject_all(links);
    auto stats = sim.run();
    EXPECT_TRUE(stats.quiesced);

    // The distributed run agrees with the centralized fixpoint on the set of
    // (source, destination, best cost) triples. The keyed table keeps one
    // winner per (S,D) while the centralized set semantics keeps every
    // equal-cost tie, so compare the projected sets.
    auto project = [](const ndlog::TupleSet& rel) {
      std::set<std::string> out;
      for (const auto& t : rel) {
        out.insert(t.at(0).to_string() + "|" + t.at(1).to_string() + "|" +
                   t.at(3).to_string());
      }
      return out;
    };
    auto merged = sim.merged_database();
    EXPECT_EQ(project(merged.relation("bestPath")),
              project(central.database.relation("bestPath")))
        << "seed " << seed;
  }
}

TEST(Simulator, TuplesLandOnTheirLocationNode) {
  auto links = link_facts(core::line_topology(3));
  Simulator sim(core::path_vector_program(), SimOptions{});
  sim.inject_all(links);
  sim.run();
  // Node n0's database only holds tuples whose location attribute is n0.
  // Original predicates locate at field 0; localization-generated copies
  // ("_sh_") carry their '@' elsewhere, so check them via the program's own
  // catalog.
  auto catalog =
      ndlog::Catalog::from_program(runtime::localize(core::path_vector_program()));
  const auto& db = sim.database("n0");
  for (const auto& pred : db.predicates()) {
    const std::size_t loc = catalog.loc_index(pred);
    for (const auto& t : db.relation(pred)) {
      EXPECT_EQ(t.at(loc).as_addr(), "n0") << t.to_string();
    }
  }
}

TEST(Simulator, MessageCountsGrowWithTopologySize) {
  std::size_t last = 0;
  for (std::size_t n : {4u, 8u, 16u}) {
    Simulator sim(core::path_vector_program(), SimOptions{});
    sim.inject_all(link_facts(core::line_topology(n)));
    auto stats = sim.run();
    EXPECT_TRUE(stats.quiesced);
    EXPECT_GT(stats.messages_sent, last);
    last = stats.messages_sent;
  }
}

TEST(Simulator, LossyLinksDropMessages) {
  SimOptions options;
  options.loss_rate = 0.3;
  options.seed = 7;
  Simulator sim(core::path_vector_program(), options);
  sim.inject_all(link_facts(core::full_mesh_topology(5)));
  auto stats = sim.run();
  EXPECT_GT(stats.messages_dropped, 0u);
  EXPECT_LT(stats.messages_dropped, stats.messages_sent);
}

TEST(Simulator, RuntimeMonitorFlagsViolations) {
  // Monitor asserting all path costs stay below 3 — violated on a longer line.
  Simulator sim(core::path_vector_program(), SimOptions{});
  sim.inject_all(link_facts(core::line_topology(6)));
  sim.add_monitor([](const std::string&, const Tuple& t, double) {
    if (t.predicate() != "path") return true;
    return t.at(3).as_int() < 3;
  });
  auto stats = sim.run();
  EXPECT_GT(stats.monitor_violations, 0u);
}

TEST(Simulator, PolicyPathVectorRunsDistributed) {
  auto program = core::policy_path_vector_program();
  std::vector<Tuple> facts;
  for (std::size_t i = 0; i < 4; ++i) {
    facts.emplace_back("node", std::vector<Value>{Value::addr(core::node_name(i))});
  }
  auto links = core::line_topology(4);
  for (const auto& t : link_facts(links)) facts.push_back(t);
  for (const auto& l : links) {
    facts.emplace_back("importPref", std::vector<Value>{Value::addr(l.src), Value::addr(l.dst),
                                                        Value::integer(100)});
  }
  Simulator sim(program, SimOptions{});
  sim.inject_all(facts);
  auto stats = sim.run();
  EXPECT_TRUE(stats.quiesced);
  // n0 has a best route to every other node.
  const auto& db = sim.database("n0");
  std::set<std::string> dests;
  for (const auto& t : db.relation("bestRoute")) dests.insert(t.at(1).as_addr());
  EXPECT_EQ(dests.size(), 4u);  // n0..n3 including self-origination
}

TEST(Simulator, SoftStateExpiresWithoutRefresh) {
  // A soft-state link table with 1s lifetime and no refresh: derived state is
  // built, then the base tuples expire.
  auto program = ndlog::parse_program(R"(
    materialize(link, 1, infinity, keys(1,2)).
    materialize(reach, infinity, infinity, keys(1,2)).
    a1 reach(@S,D) :- link(@S,D,C).
  )",
                                      "soft");
  Simulator sim(program, SimOptions{});
  sim.inject_all(link_facts(core::line_topology(2)));
  auto stats = sim.run();
  EXPECT_TRUE(stats.quiesced);
  EXPECT_EQ(stats.expirations, 2u);  // the two injected links expired
  EXPECT_EQ(sim.database("n0").size("link"), 0u);
  // Derived hard state persists (no cascading revision — P2 semantics).
  EXPECT_EQ(sim.database("n0").size("reach"), 1u);
}

TEST(Simulator, PeriodicRefreshKeepsSoftStateAlive) {
  // periodic(@N,I) re-derives a soft heartbeat; with refresh the tuple
  // survives well past its lifetime.
  auto program = ndlog::parse_program(R"(
    materialize(alive, 2, infinity, keys(1)).
    p1 alive(@N) :- periodic(@N,I).
  )",
                                      "heartbeat");
  SimOptions options;
  options.max_periodic_rounds = 10;
  options.periodic_interval = 1.0;
  Simulator sim(program, options);
  sim.add_node("n0");
  auto stats = sim.run();
  EXPECT_TRUE(stats.quiesced);
  // Refreshed at t=1..10, lifetime 2: alive until t=12; final expiry fires.
  EXPECT_EQ(sim.database("n0").size("alive"), 0u);
  EXPECT_GE(stats.end_time, 11.9);
  EXPECT_EQ(stats.expirations, 1u);  // only the last refresh actually expires
}

TEST(Simulator, RetractRemovesBaseTuple) {
  Simulator sim(core::reachable_program(), SimOptions{});
  auto links = link_facts(core::line_topology(3));
  sim.inject_all(links);
  sim.retract(links[0], 5.0);  // n0->n1 fails at t=5
  auto stats = sim.run();
  EXPECT_TRUE(stats.quiesced);
  EXPECT_FALSE(sim.database("n0").contains(links[0]));
}

TEST(Simulator, DeterministicUnderSeed) {
  auto run_once = [](std::uint64_t seed) {
    SimOptions options;
    options.seed = seed;
    options.loss_rate = 0.1;
    Simulator sim(core::path_vector_program(), options);
    sim.inject_all(link_facts(core::random_topology(6, 4, 5)));
    auto stats = sim.run();
    return std::make_pair(stats.messages_sent, sim.merged_database().dump());
  };
  auto a = run_once(11);
  auto b = run_once(11);
  auto c = run_once(12);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a == c || !(a == c));  // c may differ; just exercise it
}

TEST(Simulator, ConvergenceTimeGrowsWithDiameter) {
  double last = 0.0;
  for (std::size_t n : {4u, 8u, 16u}) {
    Simulator sim(core::path_vector_program(), SimOptions{});
    sim.inject_all(link_facts(core::line_topology(n)));
    auto stats = sim.run();
    EXPECT_TRUE(stats.quiesced);
    EXPECT_GT(stats.last_change_time, last);
    last = stats.last_change_time;
  }
}

}  // namespace
}  // namespace fvn
