// Tests for the semantic analyzer (absint + semantic): the abstract domain's
// lattice algebra, dead-rule detection (ND0014), divergence prediction
// (ND0015) including the guard/bound escape hatches, async-predicate
// classification, the CALM order-sensitivity codes (ND0016–ND0018),
// order-independent FD inference, the DOT/JSON renderers, per-pass metrics,
// and golden expected-diagnostics files for every shipped example program.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "ndlog/absint.hpp"
#include "ndlog/analysis.hpp"
#include "ndlog/diagnostics.hpp"
#include "ndlog/parser.hpp"
#include "ndlog/semantic.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace fvn::ndlog {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Parse + run the semantic passes, returning all diagnostics and the report.
std::vector<Diagnostic> analyze_source(const std::string& source,
                                       SemanticReport* report_out = nullptr,
                                       obs::Registry* metrics = nullptr) {
  DiagnosticSink sink;
  auto program = parse_program(source);
  SemanticOptions options;
  options.metrics = metrics;
  auto report = analyze_semantics(program, sink, options);
  if (report_out != nullptr) *report_out = report;
  sink.sort_by_location();
  return sink.diagnostics();
}

std::vector<Diagnostic> with_code(const std::vector<Diagnostic>& diags,
                                  std::string_view code) {
  std::vector<Diagnostic> out;
  for (const auto& d : diags) {
    if (d.code == code) out.push_back(d);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Interval lattice
// ---------------------------------------------------------------------------

TEST(AbsintInterval, EmptyTopPointBasics) {
  EXPECT_TRUE(absint::Interval::empty().is_empty());
  EXPECT_TRUE(absint::Interval().is_empty());
  EXPECT_FALSE(absint::Interval::top().is_empty());
  EXPECT_FALSE(absint::Interval::top().bounded_above());
  EXPECT_FALSE(absint::Interval::top().bounded_below());
  const auto p = absint::Interval::point(3.0);
  EXPECT_TRUE(p.is_point());
  EXPECT_TRUE(p.contains(3.0));
  EXPECT_FALSE(p.contains(2.0));
}

TEST(AbsintInterval, JoinMeetWiden) {
  const auto a = absint::Interval::range(1, 3);
  const auto b = absint::Interval::range(2, 5);
  EXPECT_EQ(a.join(b), absint::Interval::range(1, 5));
  EXPECT_EQ(a.meet(b), absint::Interval::range(2, 3));
  EXPECT_TRUE(a.meet(absint::Interval::range(10, 20)).is_empty());
  // Empty is the join identity and the meet absorber.
  EXPECT_EQ(a.join(absint::Interval::empty()), a);
  EXPECT_TRUE(a.meet(absint::Interval::empty()).is_empty());
  // Widening jumps moved endpoints to ±inf, keeps stable ones.
  const auto w = a.widen(absint::Interval::range(1, 4));
  EXPECT_EQ(w.lo, 1.0);
  EXPECT_EQ(w.hi, kInf);
  const auto w2 = a.widen(absint::Interval::range(0, 3));
  EXPECT_EQ(w2.lo, -kInf);
  EXPECT_EQ(w2.hi, 3.0);
}

TEST(AbsintInterval, Arithmetic) {
  const auto a = absint::Interval::range(1, 2);
  const auto b = absint::Interval::range(10, 20);
  EXPECT_EQ(absint::add(a, b), absint::Interval::range(11, 22));
  EXPECT_EQ(absint::sub(b, a), absint::Interval::range(8, 19));
  EXPECT_EQ(absint::mul(a, b), absint::Interval::range(10, 40));
  // Negative operand flips the product hull.
  EXPECT_EQ(absint::mul(absint::Interval::range(-2, 1), b),
            absint::Interval::range(-40, 20));
  // inf * 0 must not poison the hull with NaN.
  const auto inf_times_zero =
      absint::mul(absint::Interval::top(), absint::Interval::point(0));
  EXPECT_FALSE(std::isnan(inf_times_zero.lo));
  EXPECT_FALSE(std::isnan(inf_times_zero.hi));
  EXPECT_TRUE(absint::add(a, absint::Interval::empty()).is_empty());
}

// ---------------------------------------------------------------------------
// Abstract values: satisfiable / refine
// ---------------------------------------------------------------------------

TEST(AbsintValue, JoinMeetAcrossKinds) {
  const auto num = absint::AbstractValue::number(absint::Interval::range(1, 3));
  const auto boolean = absint::AbstractValue::boolean(true, false);
  EXPECT_TRUE(num.join(boolean).is_any());
  EXPECT_TRUE(num.meet(boolean).is_bottom());
  EXPECT_EQ(num.join(absint::AbstractValue::bottom()), num);
  EXPECT_EQ(num.meet(absint::AbstractValue::any()), num);
  const auto joined =
      num.join(absint::AbstractValue::number(absint::Interval::range(5, 9)));
  ASSERT_TRUE(joined.is_num());
  EXPECT_EQ(joined.num, absint::Interval::range(1, 9));
}

TEST(AbsintValue, SatisfiableIsConservative) {
  const auto lo = absint::AbstractValue::number(absint::Interval::range(1, 2));
  const auto hi = absint::AbstractValue::number(absint::Interval::range(5, 9));
  EXPECT_FALSE(absint::satisfiable(CmpOp::Eq, lo, hi));   // disjoint
  EXPECT_FALSE(absint::satisfiable(CmpOp::Gt, lo, hi));   // 2 > 5 impossible
  EXPECT_TRUE(absint::satisfiable(CmpOp::Lt, lo, hi));
  EXPECT_TRUE(absint::satisfiable(CmpOp::Ne, lo, hi));
  const auto three = absint::AbstractValue::number(absint::Interval::point(3));
  EXPECT_FALSE(absint::satisfiable(CmpOp::Ne, three, three));  // 3 != 3
  EXPECT_TRUE(absint::satisfiable(CmpOp::Eq, three, three));
  // Any could be anything: order comparisons stay satisfiable.
  EXPECT_TRUE(absint::satisfiable(CmpOp::Lt, absint::AbstractValue::any(), lo));
  // Bottom never satisfies anything.
  EXPECT_FALSE(
      absint::satisfiable(CmpOp::Eq, absint::AbstractValue::bottom(), lo));
}

TEST(AbsintValue, RefineIsSound) {
  const auto wide =
      absint::AbstractValue::number(absint::Interval::range(0, 100));
  const auto five = absint::AbstractValue::number(absint::Interval::point(5));
  const auto lt = absint::refine(CmpOp::Lt, wide, five);
  ASSERT_TRUE(lt.is_num());
  EXPECT_EQ(lt.num.lo, 0.0);
  EXPECT_LE(lt.num.hi, 5.0);
  const auto ge = absint::refine(CmpOp::Ge, wide, five);
  ASSERT_TRUE(ge.is_num());
  EXPECT_EQ(ge.num.lo, 5.0);
  EXPECT_EQ(ge.num.hi, 100.0);
  // Any is not narrowed by an order comparison (strings sort above numbers
  // in the kind-major value order, so "x" < 5 tells us nothing numeric)...
  EXPECT_TRUE(absint::refine(CmpOp::Lt, absint::AbstractValue::any(), five)
                  .is_any());
  // ...but equality against a numeric interval does narrow Any.
  const auto eq = absint::refine(CmpOp::Eq, absint::AbstractValue::any(), five);
  ASSERT_TRUE(eq.is_num());
  EXPECT_TRUE(eq.num.is_point());
}

TEST(AbsintValue, FlipMirrorsComparisons) {
  EXPECT_EQ(absint::flip(CmpOp::Lt), CmpOp::Gt);
  EXPECT_EQ(absint::flip(CmpOp::Le), CmpOp::Ge);
  EXPECT_EQ(absint::flip(CmpOp::Eq), CmpOp::Eq);
  EXPECT_EQ(absint::flip(CmpOp::Ne), CmpOp::Ne);
}

// ---------------------------------------------------------------------------
// ND0014: dead rules
// ---------------------------------------------------------------------------

TEST(Semantic, ND0014DeadRuleContradictoryComparisons) {
  SemanticReport report;
  const auto diags = analyze_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(dead, infinity, infinity, keys(1)).\n"
      "d dead(@S) :- link(@S,_D,C), C = 1, C > 2.\n",
      &report);
  const auto found = with_code(diags, "ND0014");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].severity, Severity::Warning);
  EXPECT_EQ(found[0].span.begin.line, 3);
  ASSERT_EQ(report.dead_rules.size(), 1u);
  EXPECT_EQ(report.dead_rules[0], 0u);
}

TEST(Semantic, ND0014NotFiredOnSatisfiableChain) {
  const auto diags = analyze_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(cheap, infinity, infinity, keys(1)).\n"
      "c cheap(@S) :- link(@S,_D,C), C < 10, C > 2.\n");
  EXPECT_TRUE(with_code(diags, "ND0014").empty()) << render_human(diags);
}

// ---------------------------------------------------------------------------
// ND0015: divergence prediction
// ---------------------------------------------------------------------------

// Count-to-infinity skeleton: recursive cost accumulation with no bound and
// no cycle guard. Statically this must be flagged; the cross-validation suite
// (test_semantic_crossval.cpp) shows the evaluator indeed raises
// DivergenceError on a cyclic topology.
const char* const kUnboundedGrowth =
    "materialize(link, infinity, infinity, keys(1,2)).\n"
    "materialize(hop, infinity, infinity, keys(1,2)).\n"
    "h1 hop(@S,D,C) :- link(@S,D,C).\n"
    "h2 hop(@S,D,C) :- link(@S,Z,C1), hop(@Z,D,C2), C = C1 + C2.\n";

TEST(Semantic, ND0015UnboundedRecursiveGrowth) {
  SemanticReport report;
  const auto diags = analyze_source(kUnboundedGrowth, &report);
  const auto found = with_code(diags, "ND0015");
  ASSERT_EQ(found.size(), 1u) << render_human(diags);
  EXPECT_EQ(found[0].severity, Severity::Warning);
  EXPECT_EQ(found[0].span.begin.line, 4);  // h2, the growing rule
  EXPECT_TRUE(report.divergent_predicates.count("hop"));
  EXPECT_TRUE(report.recursive_predicates.count("hop"));
}

TEST(Semantic, ND0015SuppressedByComparisonBound) {
  // Same recursion, but the accumulated cost is capped: the evaluator's
  // fixpoint is finite, so the analyzer must stay quiet.
  const auto diags = analyze_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(hop, infinity, infinity, keys(1,2)).\n"
      "h1 hop(@S,D,C) :- link(@S,D,C).\n"
      "h2 hop(@S,D,C) :- link(@S,Z,C1), hop(@Z,D,C2), C = C1 + C2, "
      "C < 1000.\n");
  EXPECT_TRUE(with_code(diags, "ND0015").empty()) << render_human(diags);
}

TEST(Semantic, ND0015SuppressedByCycleGuard) {
  // Path-vector style: f_inPath(...) = false prunes revisits, so paths are
  // simple and the recursion is depth-bounded by the node count.
  const auto diags = analyze_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(path, infinity, infinity, keys(1,2,3)).\n"
      "p1 path(@S,D,P,C) :- link(@S,D,C), P = f_init(S,D).\n"
      "p2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), "
      "C = C1 + C2, f_inPath(P2,S) = false, P = f_concatPath(S,P2).\n");
  EXPECT_TRUE(with_code(diags, "ND0015").empty()) << render_human(diags);
}

TEST(Semantic, ND0015FlaggedWhenGuardRemoved) {
  // The same path program without the membership guard grows P without
  // bound (and C with it).
  const auto diags = analyze_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(path, infinity, infinity, keys(1,2,3)).\n"
      "p1 path(@S,D,P,C) :- link(@S,D,C), P = f_init(S,D).\n"
      "p2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), "
      "C = C1 + C2, P = f_concatPath(S,P2).\n");
  EXPECT_EQ(with_code(diags, "ND0015").size(), 1u) << render_human(diags);
}

TEST(Semantic, ND0015NonGrowingRecursionIsClean) {
  // Plain transitive closure copies values, never grows them.
  const auto diags = analyze_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(reachable, infinity, infinity, keys(1,2)).\n"
      "t1 reachable(@S,D) :- link(@S,D,_C).\n"
      "t2 reachable(@S,D) :- link(@S,Z,_C), reachable(@Z,D).\n");
  EXPECT_TRUE(with_code(diags, "ND0015").empty()) << render_human(diags);
}

// ---------------------------------------------------------------------------
// Async classification and ND0016/ND0017/ND0018
// ---------------------------------------------------------------------------

TEST(Semantic, AsyncPredicatesPropagateTransitively) {
  const auto program = parse_program(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(cost, infinity, infinity, keys(1,2)).\n"
      "materialize(echo, infinity, infinity, keys(1,2)).\n"
      "c1 cost(@T,C) :- link(@S,T,C).\n"   // shipped head: direct async
      "e1 echo(@T,C) :- cost(@T,C).\n");   // local rule over async input
  const auto async = async_predicates(program);
  EXPECT_TRUE(async.count("cost"));
  EXPECT_TRUE(async.count("echo"));  // transitive
  EXPECT_FALSE(async.count("link"));
}

// Two sources race a block/probe pair into the same node; the negation makes
// the winner visible. The crossval suite witnesses this with two seeds.
const char* const kNegationRace =
    "materialize(link, infinity, infinity, keys(1,2)).\n"
    "materialize(seedBlock, infinity, infinity, keys(1,2)).\n"
    "materialize(seedProbe, infinity, infinity, keys(1,2)).\n"
    "materialize(block, infinity, infinity, keys(1,2)).\n"
    "materialize(probe, infinity, infinity, keys(1,2)).\n"
    "materialize(accept, infinity, infinity, keys(1,2)).\n"
    "b1 block(@T,X) :- link(@S,T,_C), seedBlock(@S,X).\n"
    "b2 probe(@T,X) :- link(@S,T,_C), seedProbe(@S,X).\n"
    "b3 accept(@T,X) :- probe(@T,X), !block(@T,X).\n";

TEST(Semantic, ND0016NegationOverAsyncPredicate) {
  SemanticReport report;
  const auto diags = analyze_source(kNegationRace, &report);
  const auto found = with_code(diags, "ND0016");
  ASSERT_EQ(found.size(), 1u) << render_human(diags);
  EXPECT_EQ(found[0].severity, Severity::Warning);
  EXPECT_EQ(found[0].span.begin.line, 9);  // the !block atom's rule
  EXPECT_TRUE(report.order_sensitive_predicates.count("accept"));
  EXPECT_FALSE(report.monotone);
}

TEST(Semantic, ND0016QuietWhenNegationIsLocal) {
  // Negation over a locally derived predicate is resolved by stratification
  // alone — no message ordering can change it.
  const auto diags = analyze_source(
      "materialize(node, infinity, infinity, keys(1)).\n"
      "materialize(flag, infinity, infinity, keys(1,2)).\n"
      "materialize(bad, infinity, infinity, keys(1,2)).\n"
      "materialize(ok, infinity, infinity, keys(1,2)).\n"
      "f1 bad(@S,X) :- flag(@S,X), node(@S).\n"
      "f2 ok(@S,X) :- flag(@S,X), !bad(@S,X).\n");
  EXPECT_TRUE(with_code(diags, "ND0016").empty()) << render_human(diags);
}

TEST(Semantic, ND0018AggregateOverAsyncInputIsNote) {
  SemanticReport report;
  const auto diags = analyze_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(cost, infinity, infinity, keys(1,2)).\n"
      "materialize(best, infinity, infinity, keys(1)).\n"
      "c1 cost(@T,C) :- link(@S,T,C).\n"
      "a1 best(@T, min<C>) :- cost(@T,C).\n",
      &report);
  const auto found = with_code(diags, "ND0018");
  ASSERT_EQ(found.size(), 1u) << render_human(diags);
  EXPECT_EQ(found[0].severity, Severity::Note);
  EXPECT_EQ(found[0].span.begin.line, 5);
  EXPECT_FALSE(report.monotone);  // aggregation breaks CALM monotonicity
}

TEST(Semantic, MonotoneProgramClassifiedConfluent) {
  SemanticReport report;
  const auto diags = analyze_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(reachable, infinity, infinity, keys(1,2)).\n"
      "t1 reachable(@S,D) :- link(@S,D,_C).\n"
      "t2 reachable(@S,D) :- link(@S,Z,_C), reachable(@Z,D).\n",
      &report);
  EXPECT_TRUE(report.monotone) << render_human(diags);
  EXPECT_TRUE(report.order_sensitive_predicates.empty());
  EXPECT_TRUE(diags.empty()) << render_human(diags);
}

// ---------------------------------------------------------------------------
// Functional dependency inference (the ND0017 engine)
// ---------------------------------------------------------------------------

TEST(Semantic, InferFdsBaseMaterializedKeys) {
  const auto program = parse_program(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(reachable, infinity, infinity, keys(1,2)).\n"
      "t1 reachable(@S,D) :- link(@S,D,_C).\n");
  const auto fds = infer_fds(program);
  // link's P2 keys (cols 1,2) functionally determine its cost column.
  EXPECT_TRUE(fd_determines(fds, "link", {0, 1}, 2));
  // A superset of a surviving determinant also determines.
  EXPECT_TRUE(fd_determines(fds, "link", {0, 1, 2}, 2));
  EXPECT_FALSE(fd_determines(fds, "link", {0}, 2));
}

TEST(Semantic, InferFdsInjectiveConcatSurvives) {
  // path_vector's path column is built injectively (f_init/f_concatPath), so
  // (S,D,P) determines C even though path tuples race across nodes.
  const auto program = parse_program(
      slurp(std::string(FVN_SOURCE_DIR) + "/examples/ndlog/path_vector.ndlog"));
  const auto fds = infer_fds(program);
  EXPECT_TRUE(fd_determines(fds, "path", {0, 1, 2}, 3));
}

TEST(Semantic, InferFdsDroppedHopColumnDoesNotSurvive) {
  // distance_vector's hop(S,D,Z,C): keys (S,D,Z) do NOT determine C — the
  // same (S,D,Z) triple is re-derived with updated costs as advertisements
  // arrive, and last-writer-wins decides which C is stored.
  const auto program = parse_program(slurp(
      std::string(FVN_SOURCE_DIR) + "/examples/ndlog/distance_vector.ndlog"));
  const auto fds = infer_fds(program);
  EXPECT_FALSE(fd_determines(fds, "hop", {0, 1, 2}, 3));
  // bestHop(S,D,Z,C): C is pinned by the bestHopCost aggregate join, but the
  // witness column Z is whichever qualifying hop arrived — not determined.
  EXPECT_TRUE(fd_determines(fds, "bestHop", {0, 1}, 3));
  EXPECT_FALSE(fd_determines(fds, "bestHop", {0, 1}, 2));
}

TEST(Semantic, ND0017KeyProjectionRace) {
  SemanticReport report;
  const auto diags = analyze_source(
      slurp(std::string(FVN_SOURCE_DIR) +
            "/examples/ndlog/distance_vector.ndlog"),
      &report);
  const auto found = with_code(diags, "ND0017");
  ASSERT_EQ(found.size(), 2u) << render_human(diags);
  // hop's materialization (line 5) drops C; bestHop's (line 7) drops Z.
  EXPECT_EQ(found[0].span.begin.line, 5);
  EXPECT_EQ(found[1].span.begin.line, 7);
  EXPECT_TRUE(report.order_sensitive_predicates.count("hop"));
  EXPECT_TRUE(report.order_sensitive_predicates.count("bestHop"));
}

TEST(Semantic, ND0017QuietOnWholeTupleKeys) {
  // link_state materializes lspath with keys(1,2,3,4) — the whole tuple —
  // so nothing is projected away and no race is possible.
  const auto diags = analyze_source(slurp(
      std::string(FVN_SOURCE_DIR) + "/examples/ndlog/link_state.ndlog"));
  EXPECT_TRUE(with_code(diags, "ND0017").empty()) << render_human(diags);
}

// ---------------------------------------------------------------------------
// Renderers, metrics, determinism
// ---------------------------------------------------------------------------

TEST(Semantic, JsonSummaryIsValidAndDeterministic) {
  DiagnosticSink sink;
  const auto program = parse_program(kNegationRace);
  const auto report = analyze_semantics(program, sink);
  const auto json1 = semantic_json(report);
  const auto json2 = semantic_json(analyze_semantics(program, sink));
  EXPECT_EQ(json1, json2);
  const auto parsed = obs::json_parse(json1);
  ASSERT_TRUE(parsed.has_value()) << json1;
  ASSERT_TRUE(parsed->is_object());
  const auto* monotone = parsed->find("monotone");
  ASSERT_NE(monotone, nullptr);
  EXPECT_EQ(monotone->kind, obs::JsonValue::Kind::Bool);
  EXPECT_FALSE(monotone->boolean);
  const auto* order = parsed->find("order_sensitive");
  ASSERT_NE(order, nullptr);
  ASSERT_TRUE(order->is_array());
  ASSERT_EQ(order->array.size(), 1u);
  EXPECT_EQ(order->array[0].string, "accept");
}

TEST(Semantic, DotRendererMarksCyclesAndAsync) {
  DiagnosticSink sink;
  const auto program = parse_program(kUnboundedGrowth);
  const auto report = analyze_semantics(program, sink);
  const auto dot = semantic_dot(program, report);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("hop"), std::string::npos);
  EXPECT_NE(dot.find("salmon"), std::string::npos);  // divergent coloring
  EXPECT_EQ(dot.find("digraph"), dot.rfind("digraph"));  // one graph
}

TEST(Semantic, MetricsCountersPopulated) {
  obs::Registry registry;
  SemanticReport report;
  analyze_source(kUnboundedGrowth, &report, &registry);
  const auto* rules = registry.find_counter("analyze/rules");
  ASSERT_NE(rules, nullptr);
  EXPECT_EQ(rules->value(), 2u);
  const auto* divergent = registry.find_counter("analyze/divergent_predicates");
  ASSERT_NE(divergent, nullptr);
  EXPECT_EQ(divergent->value(), report.divergent_predicates.size());
  // The registry's JSON export must stay parseable with the analyzer wired.
  EXPECT_TRUE(obs::json_parse(registry.to_json()).has_value());
}

// ---------------------------------------------------------------------------
// Golden expected-diagnostics per shipped example
// ---------------------------------------------------------------------------

/// "<code> <line> r<rule_index> <predicate>" per diagnostic, location-sorted
/// — the golden format ("-" when no predicate is attached). Pinning the rule
/// anchor and predicate here keeps the machine-readable payload (the same
/// fields `analyze --json` emits) stable across analyzer refactors.
std::string diag_signature(const std::string& example_stem) {
  const auto source = slurp(std::string(FVN_SOURCE_DIR) + "/examples/ndlog/" +
                            example_stem + ".ndlog");
  const auto diags = analyze_source(source);
  std::ostringstream os;
  for (const auto& d : diags) {
    os << d.code << " " << d.span.begin.line << " r" << d.rule_index << " "
       << (d.predicate.empty() ? "-" : d.predicate) << "\n";
  }
  return os.str();
}

TEST(SemanticGolden, EveryExampleMatchesExpectedDiagnostics) {
  for (const std::string stem :
       {"distance_vector", "link_state", "path_vector", "policy_path_vector",
        "reachable", "spanning_tree"}) {
    const auto golden = slurp(std::string(FVN_SOURCE_DIR) +
                              "/tests/golden/analyze/" + stem + ".txt");
    EXPECT_EQ(diag_signature(stem), golden) << "example: " << stem;
  }
}

}  // namespace
}  // namespace fvn::ndlog
