// Edge-case coverage: degenerate programs and topologies for the evaluator,
// localization error paths, catalog fallbacks, and two further prover
// theorems over the reachability program.
#include <gtest/gtest.h>

#include "core/protocols.hpp"
#include "ndlog/eval.hpp"
#include "prover/prover.hpp"
#include "runtime/localize.hpp"
#include "runtime/simulator.hpp"
#include "translate/ndlog_to_logic.hpp"

namespace fvn {
namespace {

using ndlog::Evaluator;
using ndlog::Tuple;
using ndlog::Value;

TEST(EvalEdge, EmptyProgramEmptyFacts) {
  ndlog::Program empty;
  Evaluator eval;
  auto result = eval.run(empty, {});
  EXPECT_EQ(result.database.total_size(), 0u);
}

TEST(EvalEdge, FactsOnlyProgram) {
  auto program = ndlog::parse_program("link(@n0,n1,1). link(@n1,n0,1).");
  Evaluator eval;
  auto result = eval.run(program, {});
  EXPECT_EQ(result.database.size("link"), 2u);
}

TEST(EvalEdge, SelfLoopLinkDoesNotBreakCycleCheck) {
  // A self-loop link(n0,n0): r1 creates path [n0,n0]; r2's f_inPath guard
  // must stop any further growth.
  std::vector<Tuple> facts = {
      Tuple("link", {Value::addr("n0"), Value::addr("n0"), Value::integer(1)}),
      Tuple("link", {Value::addr("n0"), Value::addr("n1"), Value::integer(1)}),
  };
  Evaluator eval;
  auto result = eval.run(core::path_vector_program(), facts);
  for (const auto& t : result.database.relation("path")) {
    EXPECT_LE(t.at(2).as_list().size(), 3u) << t.to_string();
  }
}

TEST(EvalEdge, DuplicateFactsAreIdempotent) {
  auto links = core::link_facts(core::line_topology(3));
  std::vector<Tuple> doubled = links;
  doubled.insert(doubled.end(), links.begin(), links.end());
  Evaluator eval;
  auto a = eval.run(core::path_vector_program(), links);
  auto b = eval.run(core::path_vector_program(), doubled);
  EXPECT_EQ(a.database.dump(), b.database.dump());
}

TEST(EvalEdge, DisconnectedComponentsStayDisconnected) {
  // Two separate 2-cliques: no cross paths.
  std::vector<core::Link> links = {
      {"n0", "n1", 1}, {"n1", "n0", 1}, {"n2", "n3", 1}, {"n3", "n2", 1},
  };
  Evaluator eval;
  auto result = eval.run(core::path_vector_program(), core::link_facts(links));
  for (const auto& t : result.database.relation("path")) {
    const bool src_low = t.at(0).as_addr() < std::string("n2");
    const bool dst_low = t.at(1).as_addr() < std::string("n2");
    EXPECT_EQ(src_low, dst_low) << t.to_string();
  }
}

TEST(EvalEdge, ZeroCostLinksAreLegalForPathVector) {
  std::vector<core::Link> links = {{"n0", "n1", 0}, {"n1", "n2", 0}};
  Evaluator eval;
  auto result = eval.run(core::path_vector_program(), core::link_facts(links));
  bool found = false;
  for (const auto& t : result.database.relation("bestPathCost")) {
    if (t.at(0) == Value::addr("n0") && t.at(1) == Value::addr("n2")) {
      EXPECT_EQ(t.at(2).as_int(), 0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LocalizeEdge, ThreeLocationBodyRejected) {
  auto program = ndlog::parse_program(
      "a(@X) :- p(@X,Y), q(@Y,Z), r(@Z,X).");
  EXPECT_THROW(runtime::localize(program), ndlog::AnalysisError);
}

TEST(LocalizeEdge, NegationStaysAtItsOwnSite) {
  // The negated atom lives at Y; the only legal orientation ships the
  // (positive) link to Y and evaluates the negation locally there.
  auto program = ndlog::parse_program(
      "a(@X,Y) :- link(@X,Y,C), !bad(@Y,X).");
  auto localized = runtime::localize(program);
  ASSERT_EQ(localized.rules.size(), 2u);  // ship rule + rewritten rule
  for (const auto& r : localized.rules) {
    EXPECT_TRUE(runtime::is_local_rule(r)) << r.to_string();
  }
  // The negated atom is untouched (still on `bad`).
  bool negation_preserved = false;
  for (const auto& elem : localized.rules[1].body) {
    if (const auto* ba = std::get_if<ndlog::BodyAtom>(&elem)) {
      if (ba->negated && ba->atom.predicate == "bad") negation_preserved = true;
    }
  }
  EXPECT_TRUE(negation_preserved);
}

TEST(LocalizeEdge, NotLinkRestrictedRejected) {
  // The remote atom q(@Y,...) never mentions X, and p(@X,...) never mentions
  // Y: neither orientation is link-restricted.
  auto program = ndlog::parse_program("a(@X) :- p(@X,W), q(@Y,Z), W = Z.");
  EXPECT_THROW(runtime::localize(program), ndlog::AnalysisError);
}

TEST(SimulatorEdge, TupleWithoutAddressLocationRejected) {
  auto program = ndlog::parse_program("a(@X,Y) :- b(@X,Y).");
  runtime::Simulator sim(program, {});
  EXPECT_THROW(sim.inject(Tuple("b", {Value::integer(1), Value::integer(2)})),
               ndlog::AnalysisError);
}

TEST(SimulatorEdge, EventBudgetStopsRunawayPrograms) {
  // Two nodes ping-ponging a growing counter forever; the event budget must
  // stop the run with quiesced=false.
  auto program = ndlog::parse_program(R"(
    p1 ping(@Y,X,N) :- ping(@X,Y,M), N = M + 1.
  )");
  runtime::SimOptions options;
  options.max_events = 500;
  runtime::Simulator sim(program, options);
  sim.inject(Tuple("ping", {Value::addr("a"), Value::addr("b"), Value::integer(0)}));
  auto stats = sim.run();
  EXPECT_FALSE(stats.quiesced);
  EXPECT_LE(stats.events_processed, 500u);
}

// ---------------------------------------------------------------------------
// Extra prover corpus: reachability theorems
// ---------------------------------------------------------------------------

TEST(ReachableProver, LinkImpliesReachable) {
  using logic::Formula;
  using logic::LTerm;
  using logic::Sort;
  using logic::TypedVar;
  auto theory = translate::to_logic(core::reachable_program());
  prover::Prover prover(theory);
  auto X = LTerm::var("X");
  auto Y = LTerm::var("Y");
  auto C = LTerm::var("C");
  auto stmt = Formula::forall(
      {TypedVar{"X", Sort::Node}, TypedVar{"Y", Sort::Node}, TypedVar{"C", Sort::Metric}},
      Formula::implies(Formula::pred("link", {X, Y, C}),
                       Formula::pred("reachable", {X, Y})));
  // `reachable` is recursive, so grind will not unfold it on its own — one
  // scripted expand is the human contribution, the rest is automatic.
  auto result = prover.prove(logic::Theorem{"linkImpliesReachable", stmt},
                             {prover::Command::expand("reachable"),
                              prover::Command::grind()});
  EXPECT_TRUE(result.proved) << (result.open_goals.empty()
                                     ? result.failure_reason
                                     : result.open_goals.front().to_string());
}

TEST(ReachableProver, ReachableNeedsSomeLinkByInduction) {
  // reachable(X,Y) => EXISTS Z,C: link(X,Z,C)  (the first hop exists).
  using logic::Formula;
  using logic::LTerm;
  using logic::Sort;
  using logic::TypedVar;
  auto theory = translate::to_logic(core::reachable_program());
  prover::Prover prover(theory);
  auto X = LTerm::var("X");
  auto Y = LTerm::var("Y");
  auto stmt = Formula::forall(
      {TypedVar{"X", Sort::Node}, TypedVar{"Y", Sort::Node}},
      Formula::implies(
          Formula::pred("reachable", {X, Y}),
          Formula::exists({TypedVar{"Z", Sort::Node}, TypedVar{"C", Sort::Metric}},
                          Formula::pred("link", {X, LTerm::var("Z"), LTerm::var("C")}))));
  auto result =
      prover.prove(logic::Theorem{"reachableHasFirstHop", stmt},
                   {prover::Command::induct("reachable"), prover::Command::grind()});
  EXPECT_TRUE(result.proved) << (result.open_goals.empty()
                                     ? result.failure_reason
                                     : result.open_goals.front().to_string());
}

// ---------------------------------------------------------------------------
// DRed incremental deletion (link failure at the evaluator level)
// ---------------------------------------------------------------------------

TEST(Retract, MatchesFromScratchReevaluation) {
  // Delete one link from an evaluated database; the incremental result must
  // equal evaluating the reduced fact set from scratch.
  Evaluator eval;
  auto program = core::path_vector_program();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto links = core::link_facts(core::random_topology(6, 4, seed));
    auto result = eval.run(program, links);
    const Tuple victim = links[seed % links.size()];
    auto stats = eval.retract(program, result.database, victim);
    EXPECT_GT(stats.overdeleted, 0u) << seed;

    std::vector<Tuple> reduced;
    for (const auto& l : links) {
      if (!(l == victim)) reduced.push_back(l);
    }
    auto scratch = eval.run(program, reduced);
    EXPECT_EQ(result.database.dump(), scratch.database.dump()) << "seed " << seed;
  }
}

TEST(Retract, RerouteAroundFailedLink) {
  // Triangle: n0-n2 direct (cost 1) and n0-n1-n2 (cost 4). Failing the
  // direct link re-routes bestPath onto the detour.
  std::vector<core::Link> links = {
      {"n0", "n2", 1}, {"n2", "n0", 1}, {"n0", "n1", 2},
      {"n1", "n0", 2}, {"n1", "n2", 2}, {"n2", "n1", 2},
  };
  Evaluator eval;
  auto program = core::path_vector_program();
  auto result = eval.run(program, core::link_facts(links));
  auto best_cost = [&](const ndlog::Database& db) {
    for (const auto& t : db.relation("bestPathCost")) {
      if (t.at(0) == Value::addr("n0") && t.at(1) == Value::addr("n2")) {
        return t.at(2).as_int();
      }
    }
    return std::int64_t{-1};
  };
  EXPECT_EQ(best_cost(result.database), 1);
  eval.retract(program, result.database,
               Tuple("link", {Value::addr("n0"), Value::addr("n2"), Value::integer(1)}));
  EXPECT_EQ(best_cost(result.database), 4);  // rerouted via n1
}

TEST(Retract, MissingFactIsNoOp) {
  Evaluator eval;
  auto program = core::reachable_program();
  auto result = eval.run(program, core::link_facts(core::line_topology(3)));
  auto before = result.database.dump();
  auto stats = eval.retract(program, result.database,
                            Tuple("link", {Value::addr("n8"), Value::addr("n9"),
                                           Value::integer(1)}));
  EXPECT_EQ(stats.overdeleted, 0u);
  EXPECT_EQ(result.database.dump(), before);
}

TEST(Retract, PartitioningDeletionRemovesRoutes) {
  // Cutting the only bridge of a line partitions it: no cross-side routes
  // survive.
  Evaluator eval;
  auto program = core::reachable_program();
  auto links = core::link_facts(core::line_topology(4));
  auto result = eval.run(program, links);
  // Remove both directions of the middle link n1-n2.
  eval.retract(program, result.database,
               Tuple("link", {Value::addr("n1"), Value::addr("n2"), Value::integer(1)}));
  eval.retract(program, result.database,
               Tuple("link", {Value::addr("n2"), Value::addr("n1"), Value::integer(1)}));
  for (const auto& t : result.database.relation("reachable")) {
    const bool src_low = t.at(0).as_addr() <= std::string("n1");
    const bool dst_low = t.at(1).as_addr() <= std::string("n1");
    EXPECT_EQ(src_low, dst_low) << t.to_string();
  }
}

}  // namespace
}  // namespace fvn
