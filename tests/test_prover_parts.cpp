// Unit tests for the prover's components: rationals, linear constraints,
// Fourier–Motzkin, the path-theory rewriter (including the property-style
// agreement check against the concrete built-ins), and the logic AST.
#include <gtest/gtest.h>

#include <random>

#include "logic/finite_model.hpp"
#include "ndlog/builtins.hpp"
#include "prover/linear.hpp"
#include "prover/rewrite.hpp"

namespace fvn {
namespace {

using logic::Formula;
using logic::LTerm;
using logic::LTermPtr;
using logic::Value;
using ndlog::CmpOp;
using prover::infeasible;
using prover::LinearConstraint;
using prover::linearize;
using prover::Rational;

TEST(Rational, Normalization) {
  EXPECT_EQ(Rational(2, 4).num(), 1);
  EXPECT_EQ(Rational(2, 4).den(), 2);
  EXPECT_EQ(Rational(1, -2).num(), -1);
  EXPECT_EQ(Rational(1, -2).den(), 2);
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) * Rational(2, 3), Rational(1, 3));
  EXPECT_EQ(Rational(1) - Rational(3, 2), Rational(-1, 2));
  EXPECT_TRUE(Rational(1, 3) < Rational(1, 2));
}

TEST(Linearize, VariablesAndConstants) {
  auto expr = linearize(*LTerm::arith(
      ndlog::BinOp::Add, LTerm::var("x"),
      LTerm::arith(ndlog::BinOp::Mul, LTerm::constant_of(Value::integer(3)),
                   LTerm::var("y"))));
  EXPECT_EQ(expr.coeffs.at("x"), Rational(1));
  EXPECT_EQ(expr.coeffs.at("y"), Rational(3));
  EXPECT_TRUE(expr.constant.is_zero());
}

TEST(Linearize, NonLinearBecomesOpaque) {
  auto expr = linearize(
      *LTerm::arith(ndlog::BinOp::Mul, LTerm::var("x"), LTerm::var("y")));
  EXPECT_EQ(expr.coeffs.size(), 1u);  // one opaque atom for x*y
  EXPECT_EQ(expr.coeffs.begin()->first, "(x*y)");
}

TEST(FourierMotzkin, DetectsSimpleContradiction) {
  // x <= 2 and x >= 5.
  auto c1 = prover::constraint_of(
      *Formula::cmp(CmpOp::Le, LTerm::var("x"), LTerm::constant_of(Value::integer(2))));
  auto c2 = prover::constraint_of(
      *Formula::cmp(CmpOp::Ge, LTerm::var("x"), LTerm::constant_of(Value::integer(5))));
  std::vector<LinearConstraint> all;
  all.insert(all.end(), c1->begin(), c1->end());
  all.insert(all.end(), c2->begin(), c2->end());
  EXPECT_TRUE(infeasible(all));
}

TEST(FourierMotzkin, StrictVsNonStrictBoundary) {
  // x <= 3 and x >= 3 is feasible; x < 3 and x >= 3 is not.
  auto le = prover::constraint_of(
      *Formula::cmp(CmpOp::Le, LTerm::var("x"), LTerm::constant_of(Value::integer(3))));
  auto lt = prover::constraint_of(
      *Formula::cmp(CmpOp::Lt, LTerm::var("x"), LTerm::constant_of(Value::integer(3))));
  auto ge = prover::constraint_of(
      *Formula::cmp(CmpOp::Ge, LTerm::var("x"), LTerm::constant_of(Value::integer(3))));
  std::vector<LinearConstraint> feasible_set(*le);
  feasible_set.insert(feasible_set.end(), ge->begin(), ge->end());
  EXPECT_FALSE(infeasible(feasible_set));
  std::vector<LinearConstraint> infeasible_set(*lt);
  infeasible_set.insert(infeasible_set.end(), ge->begin(), ge->end());
  EXPECT_TRUE(infeasible(infeasible_set));
}

TEST(FourierMotzkin, ChainElimination) {
  // x <= y, y <= z, z <= x - 1: infeasible.
  auto mk = [](const char* a, const char* b, std::int64_t offset) {
    return prover::constraint_of(*Formula::cmp(
        CmpOp::Le, LTerm::var(a),
        LTerm::arith(ndlog::BinOp::Add, LTerm::var(b),
                     LTerm::constant_of(Value::integer(offset)))));
  };
  std::vector<LinearConstraint> all;
  for (const auto& cs : {mk("x", "y", 0), mk("y", "z", 0), mk("z", "x", -1)}) {
    all.insert(all.end(), cs->begin(), cs->end());
  }
  EXPECT_TRUE(infeasible(all));
  // Relaxing the last constraint to offset 0 makes it satisfiable (all equal).
  all.clear();
  for (const auto& cs : {mk("x", "y", 0), mk("y", "z", 0), mk("z", "x", 0)}) {
    all.insert(all.end(), cs->begin(), cs->end());
  }
  EXPECT_FALSE(infeasible(all));
}

TEST(FourierMotzkin, EqualityExpansion) {
  // x = 4 and x <= 3: infeasible.
  auto eq = prover::constraint_of(
      *Formula::eq(LTerm::var("x"), LTerm::constant_of(Value::integer(4))));
  auto le = prover::constraint_of(
      *Formula::cmp(CmpOp::Le, LTerm::var("x"), LTerm::constant_of(Value::integer(3))));
  std::vector<LinearConstraint> all(*eq);
  all.insert(all.end(), le->begin(), le->end());
  EXPECT_TRUE(infeasible(all));
}

TEST(FourierMotzkin, NeYieldsNoConstraint) {
  EXPECT_FALSE(prover::constraint_of(
                   *Formula::cmp(CmpOp::Ne, LTerm::var("x"), LTerm::var("y")))
                   .has_value());
}

// ---------------------------------------------------------------------------
// Path-theory rewriting
// ---------------------------------------------------------------------------

TEST(Rewrite, HeadOfInitAndConcat) {
  auto init = LTerm::func("f_init", {LTerm::var("X"), LTerm::var("Y")});
  EXPECT_EQ(prover::rewrite_term(LTerm::func("f_head", {init}))->to_string(), "X");
  auto cat = LTerm::func("f_concatPath", {LTerm::var("Z"), LTerm::var("P")});
  EXPECT_EQ(prover::rewrite_term(LTerm::func("f_head", {cat}))->to_string(), "Z");
}

TEST(Rewrite, LastPushesThroughConcat) {
  auto init = LTerm::func("f_init", {LTerm::var("X"), LTerm::var("Y")});
  auto cat = LTerm::func("f_concatPath", {LTerm::var("Z"), init});
  EXPECT_EQ(prover::rewrite_term(LTerm::func("f_last", {cat}))->to_string(), "Y");
}

TEST(Rewrite, SizeComputesSymbolically) {
  auto init = LTerm::func("f_init", {LTerm::var("X"), LTerm::var("Y")});
  auto cat = LTerm::func("f_concatPath", {LTerm::var("Z"), init});
  // f_size(Z::[X,Y]) -> f_size([X,Y]) + 1 -> 2 + 1 -> 3.
  EXPECT_EQ(prover::rewrite_term(LTerm::func("f_size", {cat}))->constant.as_int(), 3);
}

TEST(Rewrite, InPathSelfMembership) {
  auto init = LTerm::func("f_init", {LTerm::var("X"), LTerm::var("Y")});
  auto in_x = LTerm::func("f_inPath", {init, LTerm::var("X")});
  EXPECT_EQ(prover::rewrite_term(in_x)->constant.as_bool(), true);
  auto cat = LTerm::func("f_concatPath", {LTerm::var("Z"), LTerm::var("P")});
  auto in_z = LTerm::func("f_inPath", {cat, LTerm::var("Z")});
  EXPECT_EQ(prover::rewrite_term(in_z)->constant.as_bool(), true);
  // Unknown membership stays symbolic.
  auto in_w = LTerm::func("f_inPath", {cat, LTerm::var("W")});
  EXPECT_EQ(prover::rewrite_term(in_w)->kind, LTerm::Kind::Func);
}

TEST(Rewrite, GroundConstantFolding) {
  auto t = LTerm::func("f_size", {LTerm::constant_of(Value::list(
                                     {Value::addr("a"), Value::addr("b")}))});
  EXPECT_EQ(prover::rewrite_term(t)->constant.as_int(), 2);
  auto sum = LTerm::arith(ndlog::BinOp::Add, LTerm::constant_of(Value::integer(2)),
                          LTerm::constant_of(Value::integer(3)));
  EXPECT_EQ(prover::rewrite_term(sum)->constant.as_int(), 5);
}

TEST(Rewrite, FormulaLevelReflexivityAndGroundCmp) {
  auto refl = Formula::eq(LTerm::var("x"), LTerm::var("x"));
  EXPECT_EQ(prover::rewrite_formula(refl)->kind, Formula::Kind::True);
  auto ground = Formula::cmp(CmpOp::Lt, LTerm::constant_of(Value::integer(1)),
                             LTerm::constant_of(Value::integer(2)));
  EXPECT_EQ(prover::rewrite_formula(ground)->kind, Formula::Kind::True);
  auto false_ground = Formula::cmp(CmpOp::Gt, LTerm::constant_of(Value::integer(1)),
                                   LTerm::constant_of(Value::integer(2)));
  EXPECT_EQ(prover::rewrite_formula(false_ground)->kind, Formula::Kind::False);
}

/// Property test: every rewrite rule agrees with the concrete built-in
/// implementations on random ground instances.
class RewriteSoundness : public ::testing::TestWithParam<int> {};

TEST_P(RewriteSoundness, RulesAgreeWithBuiltins) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const auto& reg = ndlog::BuiltinRegistry::standard();
  std::uniform_int_distribution<int> node(0, 5);
  std::uniform_int_distribution<int> len(0, 4);
  auto random_addr = [&] { return Value::addr("n" + std::to_string(node(rng))); };

  for (int round = 0; round < 50; ++round) {
    const Value x = random_addr();
    const Value y = random_addr();
    const Value z = random_addr();
    std::vector<Value> items;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) items.push_back(random_addr());
    items.push_back(y);  // non-empty tail so f_last is defined
    const Value p = Value::list(items);

    // Symbolic terms over constants: rewriting must equal direct evaluation.
    auto init = LTerm::func("f_init", {LTerm::constant_of(x), LTerm::constant_of(y)});
    auto cat = LTerm::func("f_concatPath", {LTerm::constant_of(z), LTerm::constant_of(p)});
    for (const auto& [symbolic, direct] :
         std::vector<std::pair<LTermPtr, Value>>{
             {LTerm::func("f_head", {init}), reg.call("f_head", {reg.call("f_init", {x, y})})},
             {LTerm::func("f_last", {init}), reg.call("f_last", {reg.call("f_init", {x, y})})},
             {LTerm::func("f_size", {cat}),
              reg.call("f_size", {reg.call("f_concatPath", {z, p})})},
             {LTerm::func("f_inPath", {cat, LTerm::constant_of(z)}),
              reg.call("f_inPath", {reg.call("f_concatPath", {z, p}), z})},
         }) {
      auto rewritten = prover::rewrite_term(symbolic);
      ASSERT_EQ(rewritten->kind, LTerm::Kind::Const) << symbolic->to_string();
      EXPECT_EQ(rewritten->constant, direct) << symbolic->to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteSoundness, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Logic AST basics
// ---------------------------------------------------------------------------

TEST(FormulaAst, SmartConstructorsSimplify) {
  auto t = Formula::truth();
  auto f = Formula::falsity();
  EXPECT_EQ(Formula::conj({t, t})->kind, Formula::Kind::True);
  EXPECT_EQ(Formula::conj({t, f})->kind, Formula::Kind::False);
  EXPECT_EQ(Formula::disj({f, f})->kind, Formula::Kind::False);
  EXPECT_EQ(Formula::negate(Formula::negate(Formula::pred("p", {})))->kind,
            Formula::Kind::Pred);
}

TEST(FormulaAst, QuantifierMerging) {
  auto inner = Formula::forall({logic::TypedVar{"y", logic::Sort::Node}},
                               Formula::pred("p", {LTerm::var("x"), LTerm::var("y")}));
  auto outer = Formula::forall({logic::TypedVar{"x", logic::Sort::Node}}, inner);
  EXPECT_EQ(outer->binders.size(), 2u);
}

TEST(FormulaAst, SubstitutionRespectsBinders) {
  // (FORALL x: p(x,y))[y := c] changes y; [x := c] is a no-op.
  auto f = Formula::forall({logic::TypedVar{"x", logic::Sort::Node}},
                           Formula::pred("p", {LTerm::var("x"), LTerm::var("y")}));
  auto c = LTerm::constant_of(Value::addr("n0"));
  EXPECT_NE(f->substitute("y", c)->to_string().find("n0"), std::string::npos);
  EXPECT_EQ(f->substitute("x", c)->to_string(), f->to_string());
}

TEST(FormulaAst, FreeVars) {
  auto f = Formula::forall({logic::TypedVar{"x", logic::Sort::Node}},
                           Formula::pred("p", {LTerm::var("x"), LTerm::var("y")}));
  std::set<std::string> vars;
  f->free_vars(vars);
  EXPECT_EQ(vars, (std::set<std::string>{"y"}));
}

TEST(FiniteModelEval, QuantifiersOverSortedDomains) {
  logic::FiniteModel model;
  model.add_tuple(ndlog::Tuple("p", {Value::addr("n0"), Value::integer(1)}));
  model.add_tuple(ndlog::Tuple("p", {Value::addr("n1"), Value::integer(2)}));
  // FORALL (N:Node): EXISTS (C:Metric): p(N,C)
  auto f = Formula::forall(
      {logic::TypedVar{"N", logic::Sort::Node}},
      Formula::exists({logic::TypedVar{"C", logic::Sort::Metric}},
                      Formula::pred("p", {LTerm::var("N"), LTerm::var("C")})));
  EXPECT_TRUE(model.eval(*f));
  // FORALL (N:Node)(C:Metric): p(N,C) is false (p(n0,2) missing).
  auto g = Formula::forall(
      {logic::TypedVar{"N", logic::Sort::Node}, logic::TypedVar{"C", logic::Sort::Metric}},
      Formula::pred("p", {LTerm::var("N"), LTerm::var("C")}));
  EXPECT_FALSE(model.eval(*g));
}

}  // namespace
}  // namespace fvn
