// fvn::net differential suite — the correctness statement of DESIGN.md §12:
// for every shipped example program, the threaded Cluster (real concurrency,
// real frames on a transport) reaches the *identical* merged fixpoint as the
// discrete-event runtime::Simulator, on both engines, on both transports, and
// under seeded fault injection with the ack+retransmit layer enabled.
//
// Workloads are chosen so the fixpoint is interleaving-independent (unique
// aggregate argmins, acyclic where the protocol diverges on cycles): the
// cluster's thread schedule is genuinely nondeterministic, so only confluent
// workloads admit an exact differential check. Order-sensitive runs are the
// semantic analyzer's ND0017 territory, pinned elsewhere.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/protocols.hpp"
#include "ndlog/parser.hpp"
#include "net/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/simulator.hpp"

namespace fvn {
namespace {

using core::link_facts;
using ndlog::Tuple;
using ndlog::Value;
using runtime::EngineKind;

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

ndlog::Program example_program(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(FVN_SOURCE_DIR) / "examples" / "ndlog" / name;
  return ndlog::parse_program(slurp(path), name);
}

/// A confluent workload for each example: the merged fixpoint must not depend
/// on message interleaving (unique argmins, no count-to-infinity).
std::vector<Tuple> example_workload(const std::string& name) {
  std::vector<Tuple> facts;
  const auto add_nodes_and_prefs = [&facts](const std::vector<core::Link>& links,
                                            bool with_nodes, bool with_pref) {
    std::set<std::string> names;
    for (const auto& l : links) {
      names.insert(l.src);
      names.insert(l.dst);
    }
    if (with_nodes) {
      for (const auto& n : names) {
        facts.emplace_back("node", std::vector<Value>{Value::addr(n)});
      }
    }
    for (const auto& t : link_facts(links)) facts.push_back(t);
    if (with_pref) {
      for (const auto& l : links) {
        facts.emplace_back("importPref",
                           std::vector<Value>{Value::addr(l.src), Value::addr(l.dst),
                                              Value::integer(100)});
      }
    }
  };
  if (name == "distance_vector.ndlog") {
    // Directed acyclic: DV counts to infinity on any cycle, and only a DAG
    // with unique per-(S,D) argmin costs makes bestHop interleaving-free.
    facts = link_facts({{"n0", "n1", 1},
                        {"n1", "n2", 2},
                        {"n2", "n3", 1},
                        {"n0", "n2", 5}});
  } else if (name == "link_state.ndlog") {
    // Coarse costs keep the C<1000 walk closure at <= 2 hops.
    add_nodes_and_prefs(core::line_topology(4, /*cost=*/400), false, false);
  } else if (name == "policy_path_vector.ndlog") {
    add_nodes_and_prefs(core::line_topology(4), true, true);
  } else if (name == "spanning_tree.ndlog") {
    add_nodes_and_prefs(core::line_topology(4), true, false);
  } else {
    // reachable / path_vector: unique simple paths on a line; reachable is
    // monotone anywhere but keeps the same 4-node line for uniformity.
    add_nodes_and_prefs(core::line_topology(4), false, false);
  }
  return facts;
}

std::vector<std::string> example_names() {
  std::vector<std::string> names;
  const std::filesystem::path dir =
      std::filesystem::path(FVN_SOURCE_DIR) / "examples" / "ndlog";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".ndlog") {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> sim_fixpoint(const ndlog::Program& program,
                                      const std::vector<Tuple>& facts,
                                      EngineKind engine) {
  runtime::SimOptions options;
  options.engine = engine;
  runtime::Simulator sim(program, options);
  sim.inject_all(facts);
  const auto stats = sim.run();
  EXPECT_TRUE(stats.quiesced);
  return sim.merged_database().dump();
}

struct ClusterRun {
  std::vector<std::string> fixpoint;
  net::ClusterStats stats;
  std::size_t node_count = 0;
};

ClusterRun cluster_fixpoint(const ndlog::Program& program,
                            const std::vector<Tuple>& facts,
                            net::ClusterOptions options) {
  net::Cluster cluster(program, options);
  cluster.inject_all(facts);
  ClusterRun run;
  run.stats = cluster.run();
  run.node_count = cluster.nodes().size();
  run.fixpoint = cluster.merged_database().dump();
  return run;
}

// ---------------------------------------------------------------------------
// Core differential: every example, both engines, vs the simulator
// ---------------------------------------------------------------------------

TEST(ClusterDifferential, EveryExampleMatchesSimulatorBothEngines) {
  for (const auto& name : example_names()) {
    SCOPED_TRACE(name);
    const auto program = example_program(name);
    const auto facts = example_workload(name);
    const auto expected = sim_fixpoint(program, facts, EngineKind::Interpreter);
    // Sanity: the reference fixpoint itself is engine-independent.
    EXPECT_EQ(expected, sim_fixpoint(program, facts, EngineKind::Dataflow));

    for (const EngineKind engine :
         {EngineKind::Interpreter, EngineKind::Dataflow}) {
      SCOPED_TRACE(engine == EngineKind::Interpreter ? "interpreter" : "dataflow");
      net::ClusterOptions options;
      options.engine = engine;
      const auto run = cluster_fixpoint(program, facts, options);
      EXPECT_GE(run.node_count, 4u);
      EXPECT_TRUE(run.stats.quiesced);
      EXPECT_EQ(run.fixpoint, expected);
      // Reliable channels deliver exactly once: every first transmission is
      // eventually received and acked exactly once. (Retransmits may still
      // occur on a fault-free transport when a receiver is slower than the
      // backoff — e.g. under TSan — but dedup keeps them invisible here.)
      EXPECT_EQ(run.stats.messages_received, run.stats.messages_sent);
      EXPECT_EQ(run.stats.acked, run.stats.messages_sent);
      EXPECT_EQ(run.stats.transport.frames_dropped, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Fault injection: retransmit masks seeded loss/dup/reorder/delay
// ---------------------------------------------------------------------------

TEST(ClusterDifferential, LossWithRetransmitStillMatches) {
  for (const auto& name : example_names()) {
    SCOPED_TRACE(name);
    const auto program = example_program(name);
    const auto facts = example_workload(name);
    const auto expected = sim_fixpoint(program, facts, EngineKind::Interpreter);
    for (const std::uint64_t seed : {3ull, 17ull, 40ull}) {
      SCOPED_TRACE("seed " + std::to_string(seed));
      net::ClusterOptions options;
      options.faults.drop_rate = 0.2;
      options.faults.seed = seed;
      const auto run = cluster_fixpoint(program, facts, options);
      EXPECT_TRUE(run.stats.quiesced);
      EXPECT_EQ(run.fixpoint, expected);
      // Exactly-once delivery holds under loss too.
      EXPECT_EQ(run.stats.messages_received, run.stats.messages_sent);
      EXPECT_EQ(run.stats.acked, run.stats.messages_sent);
    }
  }
}

TEST(ClusterDifferential, AllFaultsAtOnceStillMatches) {
  const auto program = example_program("path_vector.ndlog");
  const auto facts = example_workload("path_vector.ndlog");
  const auto expected = sim_fixpoint(program, facts, EngineKind::Interpreter);
  net::ClusterOptions options;
  options.engine = EngineKind::Dataflow;
  options.faults.drop_rate = 0.15;
  options.faults.duplicate_rate = 0.15;
  options.faults.reorder_rate = 0.25;
  options.faults.delay_ms = 2.0;
  options.faults.seed = 9;
  const auto run = cluster_fixpoint(program, facts, options);
  EXPECT_TRUE(run.stats.quiesced);
  EXPECT_EQ(run.fixpoint, expected);
  EXPECT_EQ(run.stats.messages_received, run.stats.messages_sent);
}

TEST(ClusterDifferential, RawModeMatchesOnFaultFreeTransport) {
  const auto program = example_program("reachable.ndlog");
  const auto facts = example_workload("reachable.ndlog");
  const auto expected = sim_fixpoint(program, facts, EngineKind::Interpreter);
  net::ClusterOptions options;
  options.reliability.enabled = false;  // no acks, no seqs; transport is exact
  const auto run = cluster_fixpoint(program, facts, options);
  EXPECT_TRUE(run.stats.quiesced);
  EXPECT_EQ(run.fixpoint, expected);
  EXPECT_EQ(run.stats.acked, 0u);
}

// ---------------------------------------------------------------------------
// UDP transport (loopback sockets; skipped cleanly where unavailable)
// ---------------------------------------------------------------------------

TEST(ClusterUdp, MatchesSimulatorAndSurvivesLoss) {
  const auto program = example_program("path_vector.ndlog");
  const auto facts = example_workload("path_vector.ndlog");
  const auto expected = sim_fixpoint(program, facts, EngineKind::Interpreter);
  for (const double loss : {0.0, 0.2}) {
    SCOPED_TRACE("loss " + std::to_string(loss));
    net::ClusterOptions options;
    options.transport = net::TransportKind::Udp;
    options.faults.drop_rate = loss;
    options.faults.seed = 5;
    try {
      const auto run = cluster_fixpoint(program, facts, options);
      EXPECT_TRUE(run.stats.quiesced);
      EXPECT_EQ(run.fixpoint, expected);
    } catch (const net::TransportError& e) {
      GTEST_SKIP() << "UDP sockets unavailable here: " << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// Scope guards, observability, termination bookkeeping
// ---------------------------------------------------------------------------

TEST(Cluster, RejectsSoftStateAndPeriodicPrograms) {
  const auto soft = ndlog::parse_program(
      "materialize(link, 30, infinity, keys(1,2)).\n"
      "r1 reach(@S,D) :- link(@S,D,_C).\n",
      "soft");
  EXPECT_THROW(net::Cluster{soft}, net::ClusterError);

  const auto periodic = ndlog::parse_program(
      "p1 ping(@N,T) :- periodic(@N,T).\n", "periodic");
  net::ClusterOptions lax;
  lax.require_stratified = false;
  EXPECT_THROW(net::Cluster(periodic, lax), net::ClusterError);
}

TEST(Cluster, RunWithoutFactsThrows) {
  const auto program = example_program("reachable.ndlog");
  net::Cluster cluster(program, {});
  EXPECT_THROW((void)cluster.run(), net::ClusterError);
}

TEST(Cluster, ReceiveOnlyNodesAreRegisteredFromFactAddresses) {
  // n3 appears only as a link *destination*; shipped tuples must still have
  // a live mailbox there.
  const auto program = example_program("reachable.ndlog");
  net::Cluster cluster(program, {});
  cluster.inject(Tuple("link", {Value::addr("n0"), Value::addr("n3"), Value::integer(1)}));
  const auto nodes = cluster.nodes();
  EXPECT_EQ(nodes, (std::vector<std::string>{"n0", "n3"}));
  const auto stats = cluster.run();
  EXPECT_TRUE(stats.quiesced);
  EXPECT_TRUE(cluster.database("n0").contains(
      Tuple("reachable", {Value::addr("n0"), Value::addr("n3")})));
  // The localized t2 join ships the link copy to its destination: n3 must
  // have a live mailbox even though it never sends.
  EXPECT_GE(stats.messages_sent, 1u);
}

TEST(Cluster, MetricsAndTraceAreThreadedThrough) {
  const auto program = example_program("reachable.ndlog");
  const auto facts = example_workload("reachable.ndlog");
  obs::Registry registry;
  obs::Trace trace;
  net::ClusterOptions options;
  options.metrics = &registry;
  options.trace = &trace;
  const auto run = cluster_fixpoint(program, facts, options);
  EXPECT_TRUE(run.stats.quiesced);

  // Per-node counters exist and sum to the aggregate stats.
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  bool timers_ticked = false;
  for (const auto& name : {"n0", "n1", "n2", "n3"}) {
    const std::string base = std::string("net/node/") + name + "/";
    const auto* s = registry.find_counter(base + "sent");
    const auto* r = registry.find_counter(base + "received");
    ASSERT_NE(s, nullptr) << base;
    ASSERT_NE(r, nullptr) << base;
    sent += s->value();
    received += r->value();
    const auto* encode = registry.find_timer(base + "encode");
    ASSERT_NE(encode, nullptr);
    if (encode->count() > 0) timers_ticked = true;
    ASSERT_NE(registry.find_histogram(base + "mailbox_depth"), nullptr);
  }
  EXPECT_EQ(sent, run.stats.messages_sent);
  EXPECT_EQ(received, run.stats.messages_received);
  EXPECT_TRUE(timers_ticked);
  // The coordinator emitted cluster-level trace samples.
  EXPECT_FALSE(trace.events().empty());
}

TEST(Cluster, StatsBytesMatchTransportAccounting) {
  const auto program = example_program("reachable.ndlog");
  const auto facts = example_workload("reachable.ndlog");
  const auto run = cluster_fixpoint(program, facts, {});
  EXPECT_TRUE(run.stats.quiesced);
  EXPECT_GT(run.stats.bytes_sent, 0u);
  // Node-level bytes_sent counts every payload handed to the transport —
  // batches, retransmits and acks alike — so on a lossless transport the two
  // layers must agree *exactly*, and the ack share is strictly inside it.
  EXPECT_EQ(run.stats.transport.bytes_sent, run.stats.bytes_sent);
  EXPECT_GT(run.stats.ack_bytes, 0u);
  EXPECT_LT(run.stats.ack_bytes, run.stats.bytes_sent);
  EXPECT_GT(run.stats.acks_sent, 0u);
  EXPECT_EQ(run.stats.transport.frames_delivered, run.stats.transport.frames_sent);
}

}  // namespace
}  // namespace fvn
