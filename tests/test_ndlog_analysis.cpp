// Unit tests for static analysis: safety, arity checking, dependency graph,
// stratification (negation/aggregation placement), the catalog, and the
// built-in function registry.
#include <gtest/gtest.h>

#include "core/protocols.hpp"
#include "ndlog/analysis.hpp"
#include "ndlog/builtins.hpp"
#include "ndlog/catalog.hpp"
#include "ndlog/parser.hpp"

namespace fvn::ndlog {
namespace {

TEST(Safety, UnboundHeadVariableRejected) {
  auto program = parse_program("a(@X,Y) :- b(@X).");
  EXPECT_THROW(check_safety(program, BuiltinRegistry::standard()), AnalysisError);
}

TEST(Safety, BoundThroughAssignmentChainAccepted) {
  auto program = parse_program("a(@X,Y) :- b(@X,Z), W = Z + 1, Y = W * 2.");
  EXPECT_NO_THROW(check_safety(program, BuiltinRegistry::standard()));
}

TEST(Safety, UnboundNegatedAtomRejected) {
  auto program = parse_program("a(@X) :- b(@X), !c(@X,Y).");
  EXPECT_THROW(check_safety(program, BuiltinRegistry::standard()), AnalysisError);
}

TEST(Safety, UnknownFunctionRejected) {
  auto program = parse_program("a(@X,Y) :- b(@X,Z), Y = f_bogus(Z).");
  EXPECT_THROW(check_safety(program, BuiltinRegistry::standard()), AnalysisError);
}

TEST(Safety, ComparisonOverUnboundVarsRejected) {
  auto program = parse_program("a(@X) :- b(@X), Y < 3.");
  EXPECT_THROW(check_safety(program, BuiltinRegistry::standard()), AnalysisError);
}

TEST(Arity, ConflictRejected) {
  auto program = parse_program("a(@X) :- b(@X,Y). c(@X) :- b(@X).");
  EXPECT_THROW(check_arities(program), AnalysisError);
}

TEST(Dependencies, BaseAndDerivedPredicates) {
  auto program = core::path_vector_program();
  auto base = base_predicates(program);
  auto derived = derived_predicates(program);
  EXPECT_TRUE(base.count("link"));
  EXPECT_TRUE(derived.count("path"));
  EXPECT_TRUE(derived.count("bestPath"));
  EXPECT_TRUE(derived.count("bestPathCost"));
  EXPECT_FALSE(derived.count("link"));
}

TEST(Stratification, PathVectorHasAggAboveRecursion) {
  auto program = core::path_vector_program();
  auto strat = stratify(program);
  EXPECT_LT(strat.stratum_of.at("path"), strat.stratum_of.at("bestPathCost"));
  EXPECT_LE(strat.stratum_of.at("bestPathCost"), strat.stratum_of.at("bestPath"));
  EXPECT_GE(strat.stratum_count, 2);
}

TEST(Stratification, RecursionThroughAggregateRejected) {
  // p depends on its own aggregate: unstratifiable.
  auto program = parse_program(R"(
    p(@X,C) :- q(@X,C).
    q(@X,min<C>) :- p(@X,C).
  )");
  EXPECT_THROW(stratify(program), AnalysisError);
}

TEST(Stratification, RecursionThroughNegationRejected) {
  auto program = parse_program(R"(
    win(@X) :- move(@X,Y), !win(@Y).
  )");
  EXPECT_THROW(stratify(program), AnalysisError);
}

TEST(Stratification, NegationAcrossStrataAccepted) {
  auto program = parse_program(R"(
    reach(@X,Y) :- edge(@X,Y).
    reach(@X,Y) :- edge(@X,Z), reach(@Z,Y).
    unreach(@X,Y) :- node(@X), node(@Y), !reach(@X,Y).
  )");
  auto strat = stratify(program);
  EXPECT_GT(strat.stratum_of.at("unreach"), strat.stratum_of.at("reach"));
}

TEST(Stratification, PolicyProgramStratifies) {
  EXPECT_NO_THROW(analyze(core::policy_path_vector_program()));
}

TEST(Catalog, LocationIndexAndKeys) {
  auto program = core::path_vector_program();
  auto catalog = Catalog::from_program(program);
  EXPECT_EQ(catalog.loc_index("path"), 0u);
  EXPECT_EQ(catalog.info("link").key_fields, (std::vector<std::size_t>{1, 2}));
  EXPECT_FALSE(catalog.info("link").lifetime_seconds.has_value());
}

TEST(Catalog, SoftStateLifetime) {
  auto program = parse_program("materialize(hb, 30, infinity, keys(1)). a(@X) :- hb(@X).");
  auto catalog = Catalog::from_program(program);
  ASSERT_TRUE(catalog.info("hb").lifetime_seconds.has_value());
  EXPECT_DOUBLE_EQ(*catalog.info("hb").lifetime_seconds, 30.0);
}

TEST(Catalog, ConflictingLocationPositionsRejected) {
  auto program = parse_program(R"(
    a(@X,Y) :- b(@X,Y).
    c(@X,Y) :- a(X,@Y).
  )");
  EXPECT_THROW(Catalog::from_program(program), AnalysisError);
}

TEST(Builtins, PathFunctions) {
  const auto& reg = BuiltinRegistry::standard();
  auto n1 = Value::addr("n1");
  auto n2 = Value::addr("n2");
  auto n3 = Value::addr("n3");
  auto path = reg.call("f_init", {n1, n2});
  EXPECT_EQ(path.to_string(), "[n1,n2]");
  auto longer = reg.call("f_concatPath", {n3, path});
  EXPECT_EQ(longer.to_string(), "[n3,n1,n2]");
  EXPECT_TRUE(reg.call("f_inPath", {longer, n1}).as_bool());
  EXPECT_FALSE(reg.call("f_inPath", {path, n3}).as_bool());
  EXPECT_EQ(reg.call("f_size", {longer}).as_int(), 3);
  EXPECT_EQ(reg.call("f_head", {longer}), n3);
  EXPECT_EQ(reg.call("f_last", {longer}), n2);
  EXPECT_EQ(reg.call("f_tail", {longer}).as_list().size(), 2u);
  EXPECT_EQ(reg.call("f_reverse", {path}).to_string(), "[n2,n1]");
  EXPECT_EQ(reg.call("f_append", {path, n3}).as_list().size(), 3u);
}

TEST(Builtins, MinMaxAbs) {
  const auto& reg = BuiltinRegistry::standard();
  EXPECT_EQ(reg.call("f_min", {Value::integer(3), Value::integer(5)}).as_int(), 3);
  EXPECT_EQ(reg.call("f_max", {Value::integer(3), Value::integer(5)}).as_int(), 5);
  EXPECT_EQ(reg.call("f_abs", {Value::integer(-4)}).as_int(), 4);
}

TEST(Builtins, ArityErrors) {
  const auto& reg = BuiltinRegistry::standard();
  EXPECT_THROW(reg.call("f_init", {Value::integer(1)}), TypeError);
  EXPECT_THROW(reg.call("f_head", {Value::list({})}), TypeError);
  EXPECT_THROW(reg.call("f_nope", {}), TypeError);
}

TEST(Builtins, CustomRegistration) {
  BuiltinRegistry reg;
  reg.register_fn("f_double", [](const std::vector<Value>& args) {
    return args.at(0).mul(Value::integer(2));
  });
  EXPECT_EQ(reg.call("f_double", {Value::integer(21)}).as_int(), 42);
}

}  // namespace
}  // namespace fvn::ndlog
