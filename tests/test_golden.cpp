// Golden-file regression tests: the PVS emission and linear-logic view of
// the paper's path-vector program are pinned byte-for-byte (tests/golden/).
// Regenerate deliberately with the snippet in each test on intentional
// format changes.
#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <sstream>

#include "core/protocols.hpp"
#include "logic/pvs_emit.hpp"
#include "ndlog/analysis.hpp"
#include "ndlog/parser.hpp"
#include "translate/linear_view.hpp"
#include "translate/ndlog_to_logic.hpp"

namespace fvn {
namespace {

std::string read_golden(const std::string& name) {
  const std::string path = std::string(FVN_SOURCE_DIR) + "/tests/golden/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Golden, PathVectorPvsEmission) {
  const std::string generated =
      logic::to_pvs_source(translate::to_logic(core::path_vector_program()));
  EXPECT_EQ(generated, read_golden("path_vector.pvs"));
}

TEST(Golden, PathVectorLinearView) {
  const std::string generated =
      translate::render_linear_view(core::path_vector_program());
  EXPECT_EQ(generated, read_golden("path_vector.linear"));
}

// ---------------------------------------------------------------------------
// Parser robustness: mutated inputs must raise ParseError/AnalysisError,
// never crash or mis-accept garbage silently.
// ---------------------------------------------------------------------------

class ParserRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRobustness, MutatedProgramsNeverCrash) {
  std::mt19937_64 rng(GetParam());
  const std::string base = core::path_vector_source();
  std::uniform_int_distribution<std::size_t> pos_dist(0, base.size() - 1);
  std::uniform_int_distribution<int> op_dist(0, 2);
  std::uniform_int_distribution<int> char_dist(32, 126);

  std::size_t parsed_ok = 0, rejected = 0;
  for (int round = 0; round < 200; ++round) {
    std::string mutated = base;
    // Apply 1-3 random mutations: delete, insert, or replace a character.
    const int mutations = 1 + static_cast<int>(rng() % 3);
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = pos_dist(rng) % std::max<std::size_t>(mutated.size(), 1);
      switch (op_dist(rng)) {
        case 0:
          if (!mutated.empty()) mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1, static_cast<char>(char_dist(rng)));
          break;
        default:
          if (!mutated.empty()) mutated[pos] = static_cast<char>(char_dist(rng));
          break;
      }
    }
    try {
      auto program = ndlog::parse_program(mutated);
      ndlog::analyze(program);  // may also throw AnalysisError
      ++parsed_ok;
    } catch (const ndlog::ParseError&) {
      ++rejected;
    } catch (const ndlog::AnalysisError&) {
      ++rejected;
    } catch (const ndlog::TypeError&) {
      ++rejected;  // e.g. a mutated constant feeding an ill-typed fold
    }
  }
  // Both outcomes occur; no other exception type or crash escapes.
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(parsed_ok + rejected, 200u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace fvn
