// Dispute-wheel detection tests (GSW safety condition) and the spanning-tree
// root-election protocol — both extensions of the paper's §3.2.1 policy
// analysis and §2.2 protocol library.
#include <gtest/gtest.h>

#include "bgp/dispute_wheel.hpp"
#include "bgp/spp_mc.hpp"
#include "core/protocols.hpp"
#include "ndlog/eval.hpp"
#include "runtime/simulator.hpp"

namespace fvn {
namespace {

using namespace fvn::bgp;

TEST(DisputeWheel, DisagreeHasTheClassicTwoPivotWheel) {
  auto wheel = find_dispute_wheel(disagree());
  ASSERT_TRUE(wheel.has_value());
  EXPECT_EQ(wheel->pivots.size(), 2u);
  // Spokes are the direct routes, rims the routes through each other.
  for (std::size_t i = 0; i < wheel->pivots.size(); ++i) {
    EXPECT_EQ(wheel->spokes[i].size(), 2u) << wheel->to_string();
    EXPECT_EQ(wheel->rim_routes[i].size(), 3u) << wheel->to_string();
  }
}

TEST(DisputeWheel, BadGadgetHasThreePivotWheel) {
  auto wheel = find_dispute_wheel(bad_gadget());
  ASSERT_TRUE(wheel.has_value());
  EXPECT_EQ(wheel->pivots.size(), 3u);
}

TEST(DisputeWheel, GoodGadgetHasNone) {
  EXPECT_FALSE(has_dispute_wheel(good_gadget()));
}

TEST(DisputeWheel, ShortestHopRingsHaveNone) {
  for (std::size_t n : {3u, 5u, 8u}) {
    EXPECT_FALSE(has_dispute_wheel(shortest_hop_ring(n))) << n;
  }
}

TEST(DisputeWheel, NoWheelImpliesSafeOnCorpus) {
  // The GSW implication checked empirically: wheel-free instances have a
  // unique stable state and no reachable oscillation.
  for (const auto& spp : {good_gadget(), shortest_hop_ring(4), shortest_hop_ring(6)}) {
    ASSERT_FALSE(has_dispute_wheel(spp)) << spp.name;
    EXPECT_EQ(stable_states(spp).size(), 1u) << spp.name;
    EXPECT_FALSE(check_oscillation(spp).has_cycle) << spp.name;
  }
  // And the wheel instances are exactly the troubled ones.
  for (const auto& spp : {disagree(), bad_gadget()}) {
    EXPECT_TRUE(has_dispute_wheel(spp)) << spp.name;
    EXPECT_TRUE(check_oscillation(spp).has_cycle) << spp.name;
  }
}

TEST(DisputeWheel, RenderingNamesPivots) {
  auto wheel = find_dispute_wheel(disagree());
  ASSERT_TRUE(wheel.has_value());
  const std::string text = wheel->to_string();
  EXPECT_NE(text.find("dispute wheel:"), std::string::npos);
  EXPECT_NE(text.find("spoke"), std::string::npos);
  EXPECT_NE(text.find("rim"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Spanning-tree root election
// ---------------------------------------------------------------------------

std::vector<ndlog::Tuple> st_facts(const std::vector<core::Link>& links,
                                   std::size_t node_count) {
  using ndlog::Value;
  std::vector<ndlog::Tuple> facts;
  for (std::size_t i = 0; i < node_count; ++i) {
    facts.emplace_back("node",
                       std::vector<Value>{Value::addr(core::node_name(i))});
  }
  for (const auto& t : core::link_facts(links)) facts.push_back(t);
  return facts;
}

TEST(SpanningTree, AllNodesElectGlobalMinimumRoot) {
  ndlog::Evaluator eval;
  auto result = eval.run(core::spanning_tree_program(),
                         st_facts(core::random_topology(7, 4, 2), 7));
  const auto& roots = result.database.relation("root");
  EXPECT_EQ(roots.size(), 7u);
  for (const auto& t : roots) {
    EXPECT_EQ(t.at(1).as_addr(), "n0") << t.to_string();  // n0 < n1 < ... lexically
  }
}

TEST(SpanningTree, DistancesAreBfsDepths) {
  ndlog::Evaluator eval;
  auto result =
      eval.run(core::spanning_tree_program(), st_facts(core::line_topology(5), 5));
  for (const auto& t : result.database.relation("dist")) {
    const std::size_t idx = std::stoul(t.at(0).as_addr().substr(1));
    EXPECT_EQ(t.at(1).as_int(), static_cast<std::int64_t>(idx)) << t.to_string();
  }
}

TEST(SpanningTree, ParentsFormATreeTowardTheRoot) {
  ndlog::Evaluator eval;
  auto result = eval.run(core::spanning_tree_program(),
                         st_facts(core::random_topology(6, 3, 9), 6));
  const auto& db = result.database;
  // Every non-root node has exactly one parent; following parents reaches n0.
  std::map<std::string, std::string> parent;
  for (const auto& t : db.relation("parent")) {
    parent[t.at(0).as_addr()] = t.at(1).as_addr();
  }
  EXPECT_EQ(parent.size(), 5u);  // all but the root
  for (auto [n, p] : parent) {
    std::string current = n;
    std::size_t hops = 0;
    while (current != "n0" && hops++ < 10) {
      ASSERT_TRUE(parent.count(current)) << current;
      current = parent.at(current);
    }
    EXPECT_EQ(current, "n0");
  }
}

TEST(SpanningTree, RunsDistributed) {
  runtime::Simulator sim(core::spanning_tree_program(), {});
  sim.inject_all(st_facts(core::ring_topology(5), 5));
  auto stats = sim.run();
  EXPECT_TRUE(stats.quiesced);
  // Every node's local root table says n0.
  for (const auto& node : sim.nodes()) {
    const auto& roots = sim.database(node).relation("root");
    ASSERT_EQ(roots.size(), 1u) << node;
    EXPECT_EQ(roots.begin()->at(1).as_addr(), "n0");
  }
}

}  // namespace
}  // namespace fvn
