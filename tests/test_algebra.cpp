// Metarouting tests (E6): automatic discharge of the four axioms for every
// base algebra, composition via lexProduct (including the paper's BGPSystem),
// and the convergence theorem exercised on the generalized solver.
#include <gtest/gtest.h>

#include "algebra/routing_algebra.hpp"
#include "algebra/solver.hpp"

namespace fvn {
namespace {

using namespace fvn::algebra;

TEST(Discharge, AddAlgebraSatisfiesAllAxioms) {
  auto report = discharge(add_algebra());
  EXPECT_TRUE(report.well_formed()) << report.to_string();
  EXPECT_TRUE(report.monotonicity.holds) << report.to_string();
  EXPECT_TRUE(report.strict_monotonicity.holds) << report.to_string();
  EXPECT_TRUE(report.isotonicity.holds) << report.to_string();
  EXPECT_TRUE(report.convergent());
  EXPECT_GT(report.total_checks, 100u);
}

TEST(Discharge, HopAlgebraSatisfiesAllAxioms) {
  auto report = discharge(hop_algebra());
  EXPECT_TRUE(report.well_formed() && report.convergent()) << report.to_string();
  EXPECT_TRUE(report.strict_monotonicity.holds);
}

TEST(Discharge, BandwidthAlgebraMonotoneButNotStrictly) {
  auto report = discharge(bandwidth_algebra());
  EXPECT_TRUE(report.well_formed()) << report.to_string();
  EXPECT_TRUE(report.monotonicity.holds);
  EXPECT_FALSE(report.strict_monotonicity.holds);  // min(l,s)=s when l>=s
  EXPECT_TRUE(report.isotonicity.holds);
}

TEST(Discharge, ReliabilityAlgebraMonotoneAndIsotone) {
  auto report = discharge(reliability_algebra());
  EXPECT_TRUE(report.well_formed()) << report.to_string();
  EXPECT_TRUE(report.monotonicity.holds);
  EXPECT_TRUE(report.isotonicity.holds);
}

TEST(Discharge, LpAlgebraIsNotMonotone) {
  // The paper's LP snippet (labelApply(l,s)=l) violates monotonicity — the
  // discharge machinery must find the counterexample automatically.
  auto report = discharge(lp_algebra());
  EXPECT_TRUE(report.well_formed()) << report.to_string();
  EXPECT_FALSE(report.monotonicity.holds);
  EXPECT_FALSE(report.monotonicity.counterexample.empty());
}

TEST(Discharge, LexProductOfStrictlyMonotoneStaysConvergent) {
  auto lex = lex_product(add_algebra(8, 3), hop_algebra(8));
  auto report = discharge(lex);
  EXPECT_TRUE(report.well_formed()) << report.to_string();
  EXPECT_TRUE(report.monotonicity.holds);
  EXPECT_TRUE(report.isotonicity.holds);
  EXPECT_TRUE(report.convergent());
}

TEST(Discharge, BgpSystemInheritsLpNonMonotonicity) {
  // BGPSystem = lexProduct[LP, RC]: the LP component breaks monotonicity of
  // the product — exactly why BGP needs extra conditions for convergence.
  auto report = discharge(bgp_system());
  EXPECT_TRUE(report.well_formed()) << report.to_string();
  EXPECT_FALSE(report.monotonicity.holds);
}

TEST(Discharge, LexProductIsotonicityNeedsStrictFirstComponent) {
  // Classic metarouting fact: lex product of a merely monotone (non-strict)
  // first component with a second component can break isotonicity.
  auto lex = lex_product(bandwidth_algebra(4), add_algebra(4, 2));
  auto report = discharge(lex);
  EXPECT_FALSE(report.isotonicity.holds) << report.to_string();
}

TEST(Discharge, ReportRendersCounterexamples) {
  auto report = discharge(lp_algebra());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("monotonicity=FAIL"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Solver / convergence theorem
// ---------------------------------------------------------------------------

std::vector<LabeledEdge> grid_edges(std::size_t n, std::int64_t label_cost) {
  // Bidirectional ring with a chord, integer labels.
  std::vector<LabeledEdge> edges;
  auto add = [&](std::size_t a, std::size_t b, std::int64_t c) {
    edges.push_back({a, b, Value::integer(c)});
    edges.push_back({b, a, Value::integer(c)});
  };
  for (std::size_t i = 0; i + 1 < n; ++i) add(i, i + 1, label_cost);
  add(n - 1, 0, label_cost);
  add(0, n / 2, label_cost + 1);
  return edges;
}

TEST(Solver, ShortestPathsMatchEnumerationOnAddAlgebra) {
  auto alg = add_algebra(100, 10);
  auto edges = grid_edges(6, 2);
  auto fast = solve(alg, 6, edges, 0);
  auto truth = solve_by_path_enumeration(alg, 6, edges, 0);
  ASSERT_TRUE(fast.converged);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(fast.best[i], truth.best[i]) << "node " << i;
  }
}

TEST(Solver, ConvergesWithinDiameterRoundsForMonotoneAlgebras) {
  auto alg = add_algebra(1000, 10);
  for (std::size_t n : {4u, 8u, 16u}) {
    auto edges = grid_edges(n, 1);
    auto result = solve(alg, n, edges, 0);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.iterations, n + 1) << n;
  }
}

TEST(Solver, BandwidthSolverFindsBottleneckPaths) {
  auto alg = bandwidth_algebra(10);
  // 0 <-2- 1 <-9- 2 : the best bandwidth from 2 to 0 is min(9,2)=2.
  std::vector<LabeledEdge> edges = {
      {1, 0, Value::integer(2)},
      {2, 1, Value::integer(9)},
      {2, 0, Value::integer(1)},  // direct but thin
  };
  auto result = solve(alg, 3, edges, 0);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.best[2].as_int(), 2);
}

TEST(Solver, UnreachableNodesKeepPhi) {
  auto alg = add_algebra();
  std::vector<LabeledEdge> edges = {{1, 0, Value::integer(1)}};
  auto result = solve(alg, 3, edges, 0);
  EXPECT_EQ(result.best[2], alg.phi);
  EXPECT_EQ(result.best[1].as_int(), 1);
}

TEST(Solver, BgpSystemSelectsByLocalPrefFirst) {
  auto sys = bgp_system();
  // Node 1 -> 0 two ways: label (lp=1, cost=3) direct, or (lp=2, cost=1)
  // via node 2. Lower lp wins (the paper's prefRel: smaller preferred),
  // despite the higher cost path being cheaper.
  std::vector<LabeledEdge> edges = {
      {1, 0, Value::list({Value::integer(1), Value::integer(3)})},
      {1, 2, Value::list({Value::integer(2), Value::integer(1)})},
      {2, 0, Value::list({Value::integer(2), Value::integer(1)})},
  };
  auto result = solve(sys, 3, edges, 0,
                      Value::list({Value::integer(1), Value::integer(0)}));
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.best[1].as_list()[0].as_int(), 1);   // lp of chosen route
  EXPECT_EQ(result.best[1].as_list()[1].as_int(), 3);   // its cost
}

class AlgebraAxiomSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AlgebraAxiomSweep, AddAlgebraAxiomsHoldAcrossParameterizations) {
  const auto [max_metric, max_label] = GetParam();
  auto report = discharge(add_algebra(max_metric, max_label));
  EXPECT_TRUE(report.well_formed() && report.convergent()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Sizes, AlgebraAxiomSweep,
                         ::testing::Combine(::testing::Values(5, 10, 20),
                                            ::testing::Values(1, 3, 7)));

class LexProductSweep : public ::testing::TestWithParam<int> {};

TEST_P(LexProductSweep, StrictMonotoneLexProductsConverge) {
  const int size = GetParam();
  auto lex = lex_product(add_algebra(size, 2), add_algebra(size, 2));
  auto report = discharge(lex);
  EXPECT_TRUE(report.convergent()) << report.to_string();
  // And the solver terminates quickly on a ring.
  auto edges = grid_edges(5, 1);
  std::vector<LabeledEdge> lifted;
  for (const auto& e : edges) {
    lifted.push_back({e.from, e.to, Value::list({e.label, e.label})});
  }
  auto result = solve(lex, 5, lifted, 0,
                      Value::list({Value::integer(0), Value::integer(0)}));
  EXPECT_TRUE(result.converged);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LexProductSweep, ::testing::Values(4, 6, 8));

}  // namespace
}  // namespace fvn
