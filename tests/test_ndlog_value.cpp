// Unit tests for the NDlog value system: construction, total order,
// arithmetic, hashing, rendering.
#include <gtest/gtest.h>

#include "ndlog/tuple.hpp"
#include "ndlog/value.hpp"

namespace fvn::ndlog {
namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value::nil().is_nil());
  EXPECT_EQ(Value::boolean(true).as_bool(), true);
  EXPECT_EQ(Value::integer(-7).as_int(), -7);
  EXPECT_DOUBLE_EQ(Value::real(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::str("hi").as_str(), "hi");
  EXPECT_EQ(Value::addr("n3").as_addr(), "n3");
  EXPECT_EQ(Value::list({Value::integer(1)}).as_list().size(), 1u);
}

TEST(Value, IntWidensToDouble) {
  EXPECT_DOUBLE_EQ(Value::integer(4).as_double(), 4.0);
}

TEST(Value, AccessorTypeErrors) {
  EXPECT_THROW(Value::integer(1).as_bool(), TypeError);
  EXPECT_THROW(Value::str("x").as_int(), TypeError);
  EXPECT_THROW(Value::boolean(true).as_list(), TypeError);
  EXPECT_THROW(Value::real(1.0).as_addr(), TypeError);
}

TEST(Value, TextAccessorAcceptsStrAndAddr) {
  EXPECT_EQ(Value::str("a").as_text(), "a");
  EXPECT_EQ(Value::addr("n1").as_text(), "n1");
  EXPECT_THROW(Value::integer(1).as_text(), TypeError);
}

TEST(Value, TotalOrderIsKindMajor) {
  // Bool < Int < Double < Str < Addr < List per ValueKind order.
  EXPECT_LT(Value::boolean(true), Value::integer(0));
  EXPECT_LT(Value::integer(99), Value::real(0.0));
  EXPECT_LT(Value::str("zzz"), Value::addr("aaa"));
  EXPECT_LT(Value::addr("zzz"), Value::list({}));
}

TEST(Value, IntOrdering) {
  EXPECT_LT(Value::integer(1), Value::integer(2));
  EXPECT_EQ(Value::integer(3), Value::integer(3));
  EXPECT_GT(Value::integer(3), Value::integer(-3));
}

TEST(Value, ListLexicographicOrdering) {
  auto l1 = Value::list({Value::integer(1), Value::integer(2)});
  auto l2 = Value::list({Value::integer(1), Value::integer(3)});
  auto l3 = Value::list({Value::integer(1)});
  EXPECT_LT(l1, l2);
  EXPECT_LT(l3, l1);  // shorter prefix first
  EXPECT_EQ(l1, Value::list({Value::integer(1), Value::integer(2)}));
}

TEST(Value, Arithmetic) {
  EXPECT_EQ(Value::integer(2).add(Value::integer(3)).as_int(), 5);
  EXPECT_EQ(Value::integer(2).sub(Value::integer(3)).as_int(), -1);
  EXPECT_EQ(Value::integer(2).mul(Value::integer(3)).as_int(), 6);
  EXPECT_EQ(Value::integer(7).div(Value::integer(2)).as_int(), 3);
  EXPECT_EQ(Value::integer(7).mod(Value::integer(3)).as_int(), 1);
  EXPECT_DOUBLE_EQ(Value::integer(1).add(Value::real(0.5)).as_double(), 1.5);
}

TEST(Value, DivisionByZeroThrows) {
  EXPECT_THROW(Value::integer(1).div(Value::integer(0)), TypeError);
  EXPECT_THROW(Value::integer(1).mod(Value::integer(0)), TypeError);
}

TEST(Value, StringConcatenationViaAdd) {
  EXPECT_EQ(Value::str("ab").add(Value::str("cd")).as_str(), "abcd");
}

TEST(Value, ListConcatenationViaAdd) {
  auto result = Value::list({Value::integer(1)}).add(Value::list({Value::integer(2)}));
  EXPECT_EQ(result.as_list().size(), 2u);
}

TEST(Value, Rendering) {
  EXPECT_EQ(Value::integer(42).to_string(), "42");
  EXPECT_EQ(Value::boolean(false).to_string(), "false");
  EXPECT_EQ(Value::str("x").to_string(), "\"x\"");
  EXPECT_EQ(Value::addr("n1").to_string(), "n1");
  EXPECT_EQ(Value::list({Value::addr("n1"), Value::addr("n2")}).to_string(), "[n1,n2]");
}

TEST(Value, HashConsistentWithEquality) {
  auto a = Value::list({Value::addr("n1"), Value::integer(3)});
  auto b = Value::list({Value::addr("n1"), Value::integer(3)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(Value::integer(1).hash(), Value::integer(2).hash());
  EXPECT_NE(Value::str("n1").hash(), Value::addr("n1").hash());
}

TEST(Tuple, EqualityHashAndRendering) {
  Tuple a("link", {Value::addr("n0"), Value::addr("n1"), Value::integer(2)});
  Tuple b("link", {Value::addr("n0"), Value::addr("n1"), Value::integer(2)});
  Tuple c("link", {Value::addr("n0"), Value::addr("n1"), Value::integer(3)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.to_string(), "link(n0,n1,2)");
  EXPECT_LT(a, c);
}

TEST(Tuple, SetSemantics) {
  TupleSet set;
  Tuple t("p", {Value::integer(1)});
  EXPECT_TRUE(set.insert(t).second);
  EXPECT_FALSE(set.insert(t).second);
  EXPECT_EQ(set.size(), 1u);
}

TEST(Tuple, SortedStringsIsDeterministic) {
  TupleSet set;
  set.insert(Tuple("b", {Value::integer(2)}));
  set.insert(Tuple("a", {Value::integer(1)}));
  auto strings = sorted_strings(set);
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0], "a(1)");
  EXPECT_EQ(strings[1], "b(2)");
}

}  // namespace
}  // namespace fvn::ndlog
