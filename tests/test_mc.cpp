// Model-checker tests (E2 + arc 8): count-to-infinity detection on
// distance-vector after link failure, split-horizon contrast, generic checker
// behaviors, and NDlog-as-transition-system exploration of all message
// interleavings.
#include <gtest/gtest.h>

#include "core/protocols.hpp"
#include "mc/checker.hpp"
#include "mc/dv_model.hpp"
#include "mc/ndlog_ts.hpp"
#include "ndlog/eval.hpp"

namespace fvn {
namespace {

using namespace fvn::mc;

DvConfig triangle_with_failure() {
  // 0 - 1 - 2 triangle; link 0-1 fails. Node 1 can count up through node 2.
  DvConfig config;
  config.node_count = 3;
  config.edges = {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}};
  config.failed_link = {{0, 1}};
  config.infinity_threshold = 16;
  return config;
}

DvConfig line_with_failure(bool split_horizon) {
  // 0 - 1 - 2 line; link 0-1 fails: 1 and 2 can bounce the stale route
  // between each other (the textbook two-node count-to-infinity).
  DvConfig config;
  config.node_count = 3;
  config.edges = {{0, 1, 1}, {1, 2, 1}};
  config.failed_link = {{0, 1}};
  config.split_horizon = split_horizon;
  config.infinity_threshold = 12;
  return config;
}

TEST(DvModel, ConvergedStateIsBellmanFordFixpoint) {
  auto config = triangle_with_failure();
  auto state = converged_state(config);
  ASSERT_TRUE(state[1].has_value());
  ASSERT_TRUE(state[2].has_value());
  EXPECT_EQ(state[1]->cost, 1);
  EXPECT_EQ(state[2]->cost, 1);
}

TEST(DvModel, CountToInfinityFoundOnLineAfterFailure) {
  // E2: the checker finds a trace in which route costs climb past the
  // threshold — the count-to-infinity anomaly.
  auto result = check_count_to_infinity(line_with_failure(false));
  EXPECT_FALSE(result.property_holds);
  ASSERT_GE(result.counterexample.size(), 3u);
  // The trace shows monotone cost growth at node 1 or 2.
  const DvState last = decode(result.counterexample.back(), 3);
  bool climbed = false;
  for (std::size_t u = 1; u < 3; ++u) {
    if (last[u] && last[u]->cost >= 12) climbed = true;
  }
  EXPECT_TRUE(climbed) << result.counterexample.back();
}

TEST(DvModel, SplitHorizonPreventsTwoNodeLoop) {
  auto result = check_count_to_infinity(line_with_failure(true));
  EXPECT_TRUE(result.property_holds);
  EXPECT_TRUE(result.exhausted);  // full state space explored, no violation
}

TEST(DvModel, CountToInfinityAlsoOnTriangle) {
  auto result = check_count_to_infinity(triangle_with_failure());
  // The triangle has an alternate real route (cost 2 via node 2), but plain
  // DV can still climb transiently? With min-selection the direct recompute
  // picks cost 2 immediately — no CTI on this topology.
  EXPECT_TRUE(result.property_holds);
}

TEST(Checker, InvariantTraceIsShortest) {
  // Simple counter system: states 0..10, successor +1; invariant < 5.
  auto successors = [](const int& s) { return std::vector<int>{s + 1}; };
  auto invariant = [](const int& s) { return s < 5; };
  auto result = check_invariant<int>({0}, successors, invariant, 1000);
  EXPECT_FALSE(result.property_holds);
  ASSERT_EQ(result.counterexample.size(), 6u);  // 0,1,2,3,4,5
  EXPECT_EQ(result.counterexample.back(), 5);
}

TEST(Checker, CycleDetectionFindsLasso) {
  // 0 -> 1 -> 2 -> 1 (lasso).
  auto successors = [](const int& s) {
    switch (s) {
      case 0: return std::vector<int>{1};
      case 1: return std::vector<int>{2};
      case 2: return std::vector<int>{1};
      default: return std::vector<int>{};
    }
  };
  auto any = [](const int&) { return true; };
  auto result = find_cycle<int>({0}, successors, any, 1000);
  EXPECT_FALSE(result.property_holds);
  ASSERT_GE(result.counterexample.size(), 3u);
  EXPECT_EQ(result.counterexample.front(), result.counterexample.back());
}

TEST(Checker, AcyclicSystemHasNoCycle) {
  auto successors = [](const int& s) {
    return s < 10 ? std::vector<int>{s + 1} : std::vector<int>{};
  };
  auto any = [](const int&) { return true; };
  auto result = find_cycle<int>({0}, successors, any, 1000);
  EXPECT_TRUE(result.property_holds);
}

// ---------------------------------------------------------------------------
// NDlog transition system (arc 8)
// ---------------------------------------------------------------------------

TEST(NdlogTs, ReachableQuiescentStateMatchesEvaluator) {
  // Deliver messages in one arbitrary order: the quiescent state's bestPath
  // costs equal the centralized evaluator's.
  auto program = core::path_vector_program();
  NdlogTransitionSystem ts(program);
  auto links = core::link_facts(core::line_topology(3));
  NetState state = ts.initial(links);
  std::size_t guard = 10000;
  while (!state.quiescent() && guard-- > 0) {
    state = ts.deliver(state, 0);
  }
  ASSERT_TRUE(state.quiescent());

  ndlog::Evaluator eval;
  auto central = eval.run(program, links);
  // Check each node's bestPath rows exist centrally with equal cost.
  std::size_t rows = 0;
  for (const auto& [node, tuples] : state.stored) {
    for (const auto& t : tuples) {
      if (t.predicate() != "bestPath") continue;
      ++rows;
      bool found = false;
      for (const auto& c : central.database.relation("bestPath")) {
        if (c.at(0) == t.at(0) && c.at(1) == t.at(1) && c.at(3) == t.at(3)) found = true;
      }
      EXPECT_TRUE(found) << t.to_string();
    }
  }
  EXPECT_GT(rows, 0u);
}

TEST(NdlogTs, InvariantHoldsAcrossAllInterleavings) {
  // Route-optimality safety across *every* message interleaving on a small
  // instance: no installed bestPath row is ever worse than the true optimum
  // once the system quiesces; transiently costs may be higher, so check a
  // weaker invariant: path costs are always >= 1 (cost positivity, the
  // prover's pathCostPositive, now model-checked).
  auto program = core::path_vector_program();
  NdlogTransitionSystem ts(program);
  auto links = core::link_facts(core::line_topology(3));
  auto invariant = [](const NetState& s) {
    for (const auto& [node, tuples] : s.stored) {
      for (const auto& t : tuples) {
        if (t.predicate() == "path" && t.at(3).as_int() < 1) return false;
      }
    }
    return true;
  };
  auto result = ts.check_invariant_all_interleavings(ts.initial(links), invariant, 20000);
  EXPECT_TRUE(result.property_holds);
  EXPECT_GT(result.states_explored, 10u);
}

TEST(NdlogTs, ViolationProducesTrace) {
  // A deliberately false invariant ("no node ever stores a 2-hop path")
  // yields a counterexample trace ending in the violating state.
  auto program = core::path_vector_program();
  NdlogTransitionSystem ts(program);
  auto links = core::link_facts(core::line_topology(3));
  auto invariant = [](const NetState& s) {
    for (const auto& [node, tuples] : s.stored) {
      for (const auto& t : tuples) {
        if (t.predicate() == "path" && t.at(2).as_list().size() >= 3) return false;
      }
    }
    return true;
  };
  auto result = ts.check_invariant_all_interleavings(ts.initial(links), invariant, 20000);
  EXPECT_FALSE(result.property_holds);
  ASSERT_GE(result.counterexample.size(), 2u);
  // The trace carries *full state snapshots*, not encoded keys: the first
  // step is the initial state (all facts in flight, no stores) and the last
  // step stores the offending 2-hop path at some node.
  EXPECT_TRUE(result.counterexample.front().stored.empty());
  EXPECT_FALSE(result.counterexample.front().inflight.empty());
  bool two_hop_stored = false;
  for (const auto& [node, tuples] : result.counterexample.back().stored) {
    for (const auto& t : tuples) {
      if (t.predicate() == "path" && t.at(2).as_list().size() >= 3) two_hop_stored = true;
    }
  }
  EXPECT_TRUE(two_hop_stored);
  // Every snapshot renders as per-node tables.
  const std::string text = render_state(result.counterexample.back());
  EXPECT_NE(text.find("node "), std::string::npos);
  EXPECT_NE(text.find("path(n"), std::string::npos);
}

TEST(NdlogTs, InterleavingCountIsSubstantial) {
  // The exploration really branches over message orders.
  auto program = core::reachable_program();
  NdlogTransitionSystem ts(program);
  auto links = core::link_facts(core::line_topology(3));
  auto always = [](const NetState&) { return true; };
  auto result = ts.check_invariant_all_interleavings(ts.initial(links), always, 50000);
  EXPECT_TRUE(result.property_holds);
  EXPECT_GT(result.states_explored, 50u);
}


TEST(NdlogTs, EventualConsistencyAcrossAllInterleavings) {
  // Every message interleaving of path-vector on a 3-line quiesces with the
  // *same* stores (confluence) and with optimal best paths — the eventual-
  // consistency result the transition-system view makes checkable.
  auto program = core::path_vector_program();
  NdlogTransitionSystem ts(program);
  auto links = core::link_facts(core::line_topology(3));

  ndlog::Evaluator eval;
  auto central = eval.run(program, links);
  std::set<std::string> expected;
  for (const auto& t : central.database.relation("bestPath")) {
    expected.insert(t.at(0).to_string() + "|" + t.at(1).to_string() + "|" +
                    t.at(3).to_string());
  }

  auto optimal = [&expected](const NetState& s) {
    std::set<std::string> got;
    for (const auto& [node, tuples] : s.stored) {
      for (const auto& t : tuples) {
        if (t.predicate() != "bestPath") continue;
        got.insert(t.at(0).to_string() + "|" + t.at(1).to_string() + "|" +
                   t.at(3).to_string());
      }
    }
    return got == expected;
  };
  auto report = ts.check_quiescent_states(ts.initial(links), optimal, 150000);
  EXPECT_TRUE(report.exhausted);
  EXPECT_GT(report.quiescent_states, 0u);
  EXPECT_TRUE(report.all_satisfy) << report.violating_state;
  EXPECT_TRUE(report.confluent);
}

TEST(NdlogTs, QuiescenceViolationReported) {
  auto program = core::reachable_program();
  NdlogTransitionSystem ts(program);
  auto links = core::link_facts(core::line_topology(2));
  auto impossible = [](const NetState&) { return false; };
  auto report = ts.check_quiescent_states(ts.initial(links), impossible, 50000);
  EXPECT_FALSE(report.all_satisfy);
  EXPECT_FALSE(report.violating_state.empty());
  // The violating trace is a full snapshot path from the initial state to
  // the violating quiescent state.
  ASSERT_GE(report.violating_trace.size(), 2u);
  EXPECT_TRUE(report.violating_trace.front().stored.empty());
  EXPECT_TRUE(report.violating_trace.back().quiescent());
  EXPECT_EQ(report.violating_trace.back().encode(), report.violating_state);
}

}  // namespace
}  // namespace fvn
