// fvn::ltl unit tests: spec parsing and diagnostics, NNF rewriting, Büchi
// construction, LTL model checking over the NDlog transition system, and the
// compiled runtime monitor (including the recorded-trace decoder).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/protocols.hpp"
#include "ltl/buchi.hpp"
#include "ltl/checker.hpp"
#include "ltl/formula.hpp"
#include "ltl/monitor.hpp"
#include "mc/ndlog_ts.hpp"
#include "ndlog/parser.hpp"
#include "obs/trace.hpp"

namespace fvn {
namespace {

using ndlog::Tuple;
using ndlog::Value;
using namespace fvn::ltl;

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(LtlParser, SpecWithNamedAndUnnamedProperties) {
  const auto spec = parse_spec(
      "// comment\n"
      "reach: F bestPath(@n0, n2, _, _).\n"
      "G !path(@n0, n0, _, _).\n",
      "t.ltl");
  ASSERT_EQ(spec.properties.size(), 2u);
  EXPECT_EQ(spec.properties[0].name, "reach");
  EXPECT_EQ(spec.properties[0].formula->op, Op::Eventually);
  EXPECT_EQ(spec.properties[1].name, "p2");  // auto-named by 1-based index
  EXPECT_EQ(spec.properties[1].formula->op, Op::Always);
}

TEST(LtlParser, PrecedenceUnaryBindsTighterThanBinary) {
  // F binds to the atom only; && then joins the two temporal subformulas.
  const auto f = parse_formula("F p(a) && G q(b)");
  ASSERT_EQ(f->op, Op::And);
  EXPECT_EQ(f->lhs->op, Op::Eventually);
  EXPECT_EQ(f->rhs->op, Op::Always);
}

TEST(LtlParser, UntilIsRightAssociative) {
  const auto f = parse_formula("p(a) U q(b) U r(c)");
  ASSERT_EQ(f->op, Op::Until);
  EXPECT_EQ(f->lhs->op, Op::Atom);
  EXPECT_EQ(f->rhs->op, Op::Until);
}

TEST(LtlParser, PatternArgsConstantsAndWildcards) {
  const auto f = parse_formula("bestPath(@n0, n2, X, _)");
  ASSERT_EQ(f->op, Op::Atom);
  const Pattern& p = f->pattern;
  EXPECT_EQ(p.predicate, "bestPath");
  ASSERT_EQ(p.args.size(), 4u);
  EXPECT_FALSE(p.args[0].wildcard);  // @n0 with a concrete name is ground
  EXPECT_FALSE(p.args[1].wildcard);  // n2 constant
  EXPECT_TRUE(p.args[2].wildcard);   // upper-case variable
  EXPECT_TRUE(p.args[3].wildcard);   // _
}

TEST(LtlParser, PatternMatchingSemantics) {
  const auto f = parse_formula("link(n0, n1)");
  const Pattern& p = f->pattern;
  // Trailing arguments beyond the pattern are unconstrained.
  EXPECT_TRUE(p.matches(
      Tuple("link", {Value::addr("n0"), Value::addr("n1"), Value::integer(7)})));
  EXPECT_FALSE(p.matches(
      Tuple("link", {Value::addr("n0"), Value::addr("n9"), Value::integer(7)})));
  EXPECT_FALSE(p.matches(Tuple("hop", {Value::addr("n0"), Value::addr("n1")})));
  // Identifier constants match both Addr and Str spellings of the same text.
  EXPECT_TRUE(p.matches(Tuple("link", {Value::str("n0"), Value::str("n1")})));
}

TEST(LtlParser, CanonicalApIdentityMergesWildcardSpellings) {
  ApSet aps;
  to_nnf(parse_formula("p(X, _) || p(_, Y)"), aps);
  EXPECT_EQ(aps.aps.size(), 1u);  // both render as p(_,_)
}

TEST(LtlParser, ParseErrorsCarryPositions) {
  try {
    parse_spec("reach: F bestPath(@n0\n", "bad.ltl");
    FAIL() << "expected ParseError";
  } catch (const ndlog::ParseError& e) {
    EXPECT_GE(e.line(), 1);
    EXPECT_GE(e.column(), 1);
  }
  EXPECT_THROW(parse_spec("p: F .\n"), ndlog::ParseError);
  EXPECT_THROW(parse_spec("p: G q(a)\n"), ndlog::ParseError);  // missing dot
}

TEST(LtlParser, CheckSpecDiagnostics) {
  const auto program = core::path_vector_program();
  const auto catalog = ndlog::Catalog::from_program(program);
  const auto spec = parse_spec(
      "a: F nosuch(n0).\n"                    // LT0002 unknown predicate
      "b: G link(@n0, n1, 1, extra).\n"       // LT0003 arity overflow
      "c: X bestPath(@n0, n1, _, _).\n"       // LT0004 X stutter note
      "d: F G stable(nosuchrel).\n",          // LT0005 unknown stable target
      "diag.ltl");
  ndlog::DiagnosticSink sink;
  check_spec(spec, catalog, sink);
  auto has = [&](const char* code) {
    for (const auto& d : sink.diagnostics())
      if (d.code == code) return true;
    return false;
  };
  EXPECT_TRUE(has("LT0002"));
  EXPECT_TRUE(has("LT0003"));
  EXPECT_TRUE(has("LT0004"));
  EXPECT_TRUE(has("LT0005"));
  EXPECT_EQ(sink.count(ndlog::Severity::Error), 0u);  // warnings never block
}

// ---------------------------------------------------------------------------
// NNF + Büchi
// ---------------------------------------------------------------------------

TEST(LtlNnf, NegationPushesThroughTemporalOperators) {
  ApSet aps;
  // ¬(F p) = G ¬p = false R ¬p.
  const auto nnf = to_nnf(parse_formula("F p(a)"), aps, /*negated=*/true);
  ASSERT_EQ(nnf->kind, Nnf::Kind::Release);
  EXPECT_EQ(nnf->lhs->kind, Nnf::Kind::False);
  ASSERT_EQ(nnf->rhs->kind, Nnf::Kind::Lit);
  EXPECT_FALSE(nnf->rhs->positive);
}

TEST(LtlNnf, ImplicationRewrites) {
  ApSet aps;
  // p -> q  ==  ¬p ∨ q.
  const auto nnf = to_nnf(parse_formula("p(a) -> q(b)"), aps);
  ASSERT_EQ(nnf->kind, Nnf::Kind::Or);
  EXPECT_FALSE(nnf->lhs->positive);
  EXPECT_TRUE(nnf->rhs->positive);
}

TEST(LtlBuchi, EventuallyAutomatonShape) {
  ApSet aps;
  const auto nnf = to_nnf(parse_formula("F p(a)"), aps);
  const Buchi b = build_buchi(nnf, aps.aps.size());
  ASSERT_FALSE(b.states.empty());
  ASSERT_FALSE(b.initial.empty());
  bool any_accepting = false;
  for (const auto& s : b.states) any_accepting |= s.accepting;
  EXPECT_TRUE(any_accepting);
  // Some state must require p (the obligation is eventually discharged).
  bool requires_p = false;
  for (const auto& s : b.states) requires_p |= (s.must_true & 1) != 0;
  EXPECT_TRUE(requires_p);
  EXPECT_FALSE(b.to_dot(aps).empty());
}

TEST(LtlBuchi, AdmitsRespectsLiteralMasks) {
  ApSet aps;
  const auto nnf = to_nnf(parse_formula("G p(a)"), aps);
  const Buchi b = build_buchi(nnf, aps.aps.size());
  // G p: every (non-trivial) state requires p; valuation 0 must be rejected
  // somewhere on every path. The initial states all require p.
  for (std::size_t i : b.initial) {
    EXPECT_TRUE(b.states[i].admits(1));
    EXPECT_FALSE(b.states[i].admits(0));
  }
}

// ---------------------------------------------------------------------------
// Model checker over the NDlog transition system
// ---------------------------------------------------------------------------

std::vector<Tuple> line2_links() {
  return {Tuple("link", {Value::addr("n0"), Value::addr("n1"), Value::integer(1)}),
          Tuple("link", {Value::addr("n1"), Value::addr("n0"), Value::integer(1)})};
}

TEST(LtlChecker, LivenessHoldsOnReachable) {
  mc::NdlogTransitionSystem ts(core::reachable_program());
  const auto spec = parse_spec(
      "reach: F reachable(@n0, n1).\n"
      "converges: F G stable(reachable).\n");
  const auto result = check_ltl(ts, ts.initial(line2_links()), spec);
  ASSERT_EQ(result.properties.size(), 2u);
  EXPECT_TRUE(result.all_hold());
  EXPECT_TRUE(result.exhausted());
  for (const auto& p : result.properties) {
    EXPECT_GT(p.product_states, 0u);
    EXPECT_TRUE(p.stem.empty());
  }
}

TEST(LtlChecker, ViolationYieldsLassoWithSnapshots) {
  mc::NdlogTransitionSystem ts(core::reachable_program());
  const auto spec = parse_spec("bad: G !reachable(@n0, n1).\n");
  const auto result = check_ltl(ts, ts.initial(line2_links()), spec);
  ASSERT_EQ(result.properties.size(), 1u);
  const auto& p = result.properties[0];
  EXPECT_FALSE(p.holds);
  ASSERT_FALSE(p.stem.empty());
  ASSERT_FALSE(p.cycle.empty());
  // The lasso closes: the cycle ends back at the loop head.
  EXPECT_EQ(p.cycle.back().state, p.stem.back().state);
  // Snapshots are full states: the final stem state stores the offending
  // tuple at n0.
  const auto& last = p.stem.back().state;
  bool found = false;
  for (const auto& [node, tuples] : last.stored) {
    for (const auto& t : tuples) {
      if (t.predicate() == "reachable") found = true;
    }
  }
  EXPECT_TRUE(found);
  // Rendering includes per-node tables and marks the cycle.
  const std::string text = render_counterexample(p);
  EXPECT_NE(text.find("node n0"), std::string::npos);
  EXPECT_NE(text.find("cycle"), std::string::npos);
  EXPECT_NE(text.find("reachable(n0,n1)"), std::string::npos);
}

TEST(LtlChecker, CounterexampleExportsAsChromeTrace) {
  mc::NdlogTransitionSystem ts(core::reachable_program());
  const auto spec = parse_spec("bad: G !reachable(@n0, n1).\n");
  const auto result = check_ltl(ts, ts.initial(line2_links()), spec);
  obs::Trace trace;
  counterexample_to_trace(result.properties[0], trace);
  bool saw_ltl = false, saw_state = false;
  for (const auto& e : trace.events()) {
    if (e.cat == "ltl") saw_ltl = true;
    if (e.cat == "ltl-state") saw_state = true;
  }
  EXPECT_TRUE(saw_ltl);
  EXPECT_TRUE(saw_state);
}

TEST(LtlChecker, BudgetExhaustionIsReported) {
  mc::NdlogTransitionSystem ts(core::path_vector_program());
  const auto spec = parse_spec("conv: F G stable(bestPath).\n");
  CheckOptions options;
  options.max_product_states = 3;
  const auto result =
      check_ltl(ts, ts.initial(core::link_facts(core::line_topology(3))), spec);
  const auto bounded = check_ltl(
      ts, ts.initial(core::link_facts(core::line_topology(3))), spec, options);
  EXPECT_TRUE(result.exhausted());
  EXPECT_FALSE(bounded.exhausted());
  EXPECT_TRUE(bounded.all_hold());  // no violation found within the budget
}

TEST(LtlChecker, StableIsTrueInitiallyAndAfterQuiescence) {
  // On an empty-step system (no facts) stable() holds immediately: the
  // stutter self-loop keeps every relation unchanged forever.
  mc::NdlogTransitionSystem ts(core::reachable_program());
  const auto spec = parse_spec("s: G stable(reachable).\n");
  const auto result = check_ltl(ts, ts.initial({}), spec);
  EXPECT_TRUE(result.all_hold());
}

TEST(LtlChecker, GoldenCounterexampleIsStable) {
  // The rendered lasso for the smallest violated property is pinned byte for
  // byte: any change to the search order, state encoding, or renderer shows
  // up as a golden diff. One directed link => a deterministic 3-step stem.
  mc::NdlogTransitionSystem ts(core::reachable_program());
  const auto spec = parse_spec("never_reaches: G !reachable(@n0, n1).\n");
  const std::vector<Tuple> facts = {
      Tuple("link", {Value::addr("n0"), Value::addr("n1"), Value::integer(1)})};
  const auto result = check_ltl(ts, ts.initial(facts), spec);
  ASSERT_FALSE(result.all_hold());
  const std::string text = render_counterexample(result.properties[0]);

  const auto golden_path = std::filesystem::path(FVN_SOURCE_DIR) / "tests" /
                           "golden" / "ltl" / "reachable_never.txt";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << golden_path;
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(text, os.str());
}

// ---------------------------------------------------------------------------
// Runtime monitor
// ---------------------------------------------------------------------------

TupleEvent ev(TupleEvent::Kind kind, const char* node, Tuple tuple,
              std::uint64_t ts_us = 0) {
  TupleEvent e;
  e.kind = kind;
  e.node = node;
  e.tuple = std::move(tuple);
  e.ts_us = ts_us;
  return e;
}

Tuple p_a() { return Tuple("p", {Value::addr("a")}); }

TEST(LtlMonitor, SafetyViolationFiresMidTrace) {
  const auto spec = parse_spec("never: G !p(a).\n");
  MonitorSet monitors(spec);
  monitors.on_event(ev(TupleEvent::Kind::Install, "n0",
                       Tuple("q", {Value::addr("x")})));
  EXPECT_TRUE(monitors.all_satisfied());
  monitors.on_event(ev(TupleEvent::Kind::Install, "n0", p_a()));
  const auto verdicts = monitors.finish();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].satisfied);
  EXPECT_TRUE(verdicts[0].fired);
  EXPECT_EQ(verdicts[0].violation_event, 2u);  // 1-based ordinal
  EXPECT_NE(render_verdicts(verdicts).find("VIOLATED"), std::string::npos);
  EXPECT_NE(render_verdicts(verdicts).find("fired at event 2"), std::string::npos);
}

TEST(LtlMonitor, LivenessSatisfiedOnceWitnessed) {
  const auto spec = parse_spec("reach: F p(a).\n");
  MonitorSet monitors(spec);
  // Unsatisfied at end of an empty trace: the stutter extension never
  // produces p(a).
  EXPECT_FALSE(monitors.all_satisfied());
  monitors.on_event(ev(TupleEvent::Kind::Install, "n0", p_a()));
  // Even after a retraction, F p was witnessed — still satisfied.
  monitors.on_event(ev(TupleEvent::Kind::Retract, "n0", p_a()));
  const auto verdicts = monitors.finish();
  EXPECT_TRUE(verdicts[0].satisfied);
  EXPECT_FALSE(verdicts[0].fired);
}

TEST(LtlMonitor, PersistenceTracksFinalState) {
  // F G p(a): satisfied iff p(a) is stored at end of trace (stutter
  // extension holds it forever).
  const auto spec = parse_spec("hold: F G p(a).\n");
  {
    MonitorSet monitors(spec);
    monitors.on_event(ev(TupleEvent::Kind::Install, "n0", p_a()));
    EXPECT_TRUE(monitors.all_satisfied());
  }
  {
    MonitorSet monitors(spec);
    monitors.on_event(ev(TupleEvent::Kind::Install, "n0", p_a()));
    monitors.on_event(ev(TupleEvent::Kind::Retract, "n0", p_a()));
    EXPECT_FALSE(monitors.all_satisfied());
  }
}

TEST(LtlMonitor, ExpiryCountsAsRemoval) {
  const auto spec = parse_spec("hold: F G p(a).\n");
  MonitorSet monitors(spec);
  monitors.on_event(ev(TupleEvent::Kind::Install, "n0", p_a()));
  monitors.on_event(ev(TupleEvent::Kind::Expire, "n0", p_a()));
  EXPECT_FALSE(monitors.all_satisfied());
}

TEST(LtlMonitor, StablePredicateOverEvents) {
  // F G stable(p): satisfied at end of any finite trace (stutter extension
  // stops changing p), but an event stream where p keeps changing only
  // becomes stable at the end.
  const auto spec = parse_spec("conv: F G stable(p).\n");
  MonitorSet monitors(spec);
  monitors.on_event(ev(TupleEvent::Kind::Install, "n0", p_a()));
  monitors.on_event(ev(TupleEvent::Kind::Retract, "n0", p_a()));
  EXPECT_TRUE(monitors.all_satisfied());
}

TEST(LtlMonitor, EventsFromTraceRoundTrip) {
  obs::Trace trace;
  trace.instant_at(1000, "install p", "tuple",
                   "{\"node\":\"n0\",\"tuple\":\"p(a)\"}");
  trace.instant_at(2000, "retract p", "tuple",
                   "{\"node\":\"n1\",\"tuple\":\"p(b)\"}");
  trace.instant_at(2500, "expire p", "tuple",
                   "{\"node\":\"n1\",\"tuple\":\"p(c)\"}");
  trace.instant_at(3000, "unrelated", "sim", "{}");  // skipped: wrong category
  const auto events = events_from_trace(trace.events());
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TupleEvent::Kind::Install);
  EXPECT_EQ(events[0].node, "n0");
  EXPECT_EQ(events[0].tuple.to_string(), "p(a)");
  EXPECT_EQ(events[0].ts_us, 1000u);
  EXPECT_EQ(events[1].kind, TupleEvent::Kind::Retract);
  EXPECT_EQ(events[2].kind, TupleEvent::Kind::Expire);
}

}  // namespace
}  // namespace fvn
