// Tests for the multi-pass diagnostics engine: one clean program asserting
// zero diagnostics, one minimal trigger per diagnostic code (asserting code,
// severity, and line number), sink behavior (all findings collected, sorted),
// renderer output, and the located throwing wrappers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/protocols.hpp"
#include "ndlog/analysis.hpp"
#include "ndlog/diagnostics.hpp"
#include "ndlog/lint.hpp"
#include "ndlog/parser.hpp"

namespace fvn::ndlog {
namespace {

std::vector<Diagnostic> lint_source(const std::string& source) {
  DiagnosticSink sink;
  lint_program(parse_program(source), sink);
  return sink.diagnostics();
}

/// Non-note diagnostics with the given code (notes ride along with the
/// finding they annotate and share its code).
std::vector<Diagnostic> with_code(const std::vector<Diagnostic>& diags,
                                  std::string_view code) {
  std::vector<Diagnostic> out;
  for (const auto& d : diags) {
    if (d.code == code && d.severity != Severity::Note) out.push_back(d);
  }
  return out;
}

TEST(Lint, CleanProgramHasZeroDiagnostics) {
  // Line-numbered so any regression names a position. `_C` marks the unused
  // cost column; both predicates are materialized and reachable is read.
  const auto diags = lint_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(reachable, infinity, infinity, keys(1,2)).\n"
      "t1 reachable(@S,D) :- link(@S,D,_C).\n"
      "t2 reachable(@S,D) :- link(@S,Z,_C), reachable(@Z,D).\n");
  EXPECT_TRUE(diags.empty()) << render_human(diags);
}

TEST(Lint, PaperProtocolsAreErrorFree) {
  for (const auto& program :
       {core::path_vector_program(), core::distance_vector_program(),
        core::link_state_program(), core::reachable_program(),
        core::policy_path_vector_program(), core::spanning_tree_program()}) {
    DiagnosticSink sink;
    lint_program(program, sink);
    EXPECT_EQ(sink.count(Severity::Error), 0u)
        << program.name << ":\n"
        << render_human(sink.diagnostics());
  }
}

TEST(Lint, ND0002ArityMismatch) {
  const auto diags = lint_source(
      "materialize(q, infinity, infinity, keys(1)).\n"
      "materialize(p, infinity, infinity, keys(1)).\n"
      "materialize(r, infinity, infinity, keys(1)).\n"
      "a1 p(@X) :- q(@X).\n"
      "a2 r(@Y) :- q(@Y,_Z).\n");
  const auto hits = with_code(diags, "ND0002");
  ASSERT_EQ(hits.size(), 1u) << render_human(diags);
  EXPECT_EQ(hits[0].severity, Severity::Error);
  EXPECT_EQ(hits[0].span.begin.line, 5);
}

TEST(Lint, ND0003UnboundVariable) {
  const auto diags = lint_source(
      "materialize(b, infinity, infinity, keys(1)).\n"
      "materialize(a, infinity, infinity, keys(1,2)).\n"
      "r1 a(@X,Y) :- b(@X).\n");
  const auto hits = with_code(diags, "ND0003");
  ASSERT_EQ(hits.size(), 1u) << render_human(diags);
  EXPECT_EQ(hits[0].severity, Severity::Error);
  EXPECT_EQ(hits[0].span.begin.line, 3);
  EXPECT_NE(hits[0].message.find("'Y'"), std::string::npos);
}

TEST(Lint, ND0004UnknownFunction) {
  const auto diags = lint_source(
      "materialize(b, infinity, infinity, keys(1)).\n"
      "materialize(a, infinity, infinity, keys(1,2)).\n"
      "r1 a(@X,Y) :- b(@X), Y=f_nosuch(X).\n");
  const auto hits = with_code(diags, "ND0004");
  ASSERT_EQ(hits.size(), 1u) << render_human(diags);
  EXPECT_EQ(hits[0].severity, Severity::Error);
  EXPECT_EQ(hits[0].span.begin.line, 3);
  EXPECT_NE(hits[0].message.find("f_nosuch"), std::string::npos);
}

TEST(Lint, ND0005NotStratifiable) {
  const auto diags = lint_source(
      "materialize(q, infinity, infinity, keys(1)).\n"
      "materialize(p, infinity, infinity, keys(1)).\n"
      "r1 p(@X) :- q(@X), !p(@X).\n");
  const auto hits = with_code(diags, "ND0005");
  ASSERT_EQ(hits.size(), 1u) << render_human(diags);
  EXPECT_EQ(hits[0].severity, Severity::Error);
  EXPECT_EQ(hits[0].span.begin.line, 3);
}

TEST(Lint, ND0006UnusedPredicate) {
  const auto diags = lint_source(
      "materialize(b, infinity, infinity, keys(1)).\n"
      "r1 a(@X) :- b(@X).\n");
  const auto hits = with_code(diags, "ND0006");
  ASSERT_EQ(hits.size(), 1u) << render_human(diags);
  EXPECT_EQ(hits[0].severity, Severity::Warning);
  EXPECT_EQ(hits[0].span.begin.line, 2);
  EXPECT_NE(hits[0].message.find("'a'"), std::string::npos);
}

TEST(Lint, ND0007UnderivablePredicate) {
  const auto diags = lint_source(
      "materialize(c, infinity, infinity, keys(1)).\n"
      "r1 c(@X) :- b(@X).\n");
  const auto hits = with_code(diags, "ND0007");
  ASSERT_EQ(hits.size(), 1u) << render_human(diags);
  EXPECT_EQ(hits[0].severity, Severity::Warning);
  EXPECT_EQ(hits[0].span.begin.line, 2);
  EXPECT_NE(hits[0].message.find("'b'"), std::string::npos);
}

TEST(Lint, ND0007ExemptsPeriodicAndMaterialized) {
  const auto diags = lint_source(
      "materialize(beat, infinity, infinity, keys(1)).\n"
      "r1 beat(@N) :- periodic(@N,_I).\n");
  EXPECT_TRUE(with_code(diags, "ND0007").empty()) << render_human(diags);
}

TEST(Lint, ND0008DuplicateRule) {
  const auto diags = lint_source(
      "materialize(b, infinity, infinity, keys(1)).\n"
      "materialize(a, infinity, infinity, keys(1)).\n"
      "r1 a(@X) :- b(@X).\n"
      "r2 a(@X) :- b(@X).\n");
  const auto hits = with_code(diags, "ND0008");
  ASSERT_EQ(hits.size(), 1u) << render_human(diags);
  EXPECT_EQ(hits[0].severity, Severity::Warning);
  EXPECT_EQ(hits[0].span.begin.line, 4);  // the later duplicate is flagged
  EXPECT_NE(hits[0].message.find("r1"), std::string::npos);
}

TEST(Lint, ND0009SingletonVariable) {
  const auto diags = lint_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(r, infinity, infinity, keys(1,2)).\n"
      "r1 r(@S,D) :- link(@S,D,C).\n");
  const auto hits = with_code(diags, "ND0009");
  ASSERT_EQ(hits.size(), 1u) << render_human(diags);
  EXPECT_EQ(hits[0].severity, Severity::Warning);
  EXPECT_EQ(hits[0].span.begin.line, 3);
  EXPECT_NE(hits[0].message.find("'C'"), std::string::npos);
  EXPECT_NE(hits[0].hint.find("_C"), std::string::npos);
}

TEST(Lint, ND0009UnderscorePrefixSuppresses) {
  const auto diags = lint_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(r, infinity, infinity, keys(1,2)).\n"
      "r1 r(@S,D) :- link(@S,D,_C).\n");
  EXPECT_TRUE(with_code(diags, "ND0009").empty()) << render_human(diags);
}

TEST(Lint, ND0010CartesianProductBody) {
  const auto diags = lint_source(
      "materialize(b, infinity, infinity, keys(1)).\n"
      "materialize(c, infinity, infinity, keys(1)).\n"
      "materialize(a, infinity, infinity, keys(1,2)).\n"
      "r1 a(@X,Y) :- b(@X), c(@Y).\n");
  const auto hits = with_code(diags, "ND0010");
  ASSERT_EQ(hits.size(), 1u) << render_human(diags);
  EXPECT_EQ(hits[0].severity, Severity::Warning);
  EXPECT_EQ(hits[0].span.begin.line, 4);
}

TEST(Lint, ND0010ComparisonJoinsAtoms) {
  // X<Y correlates the two atoms into a theta-join: no warning.
  const auto diags = lint_source(
      "materialize(b, infinity, infinity, keys(1)).\n"
      "materialize(c, infinity, infinity, keys(1)).\n"
      "materialize(a, infinity, infinity, keys(1,2)).\n"
      "r1 a(@X,Y) :- b(@X), c(@Y), X<Y.\n");
  EXPECT_TRUE(with_code(diags, "ND0010").empty()) << render_human(diags);
}

TEST(Lint, ND0011AggregateOverGuardedBody) {
  const auto diags = lint_source(
      "materialize(b, infinity, infinity, keys(1,2)).\n"
      "materialize(m, infinity, infinity, keys(1)).\n"
      "r1 m(@X,min<C>) :- b(@X,C), C<10.\n");
  const auto hits = with_code(diags, "ND0011");
  ASSERT_EQ(hits.size(), 1u) << render_human(diags);
  EXPECT_EQ(hits[0].severity, Severity::Warning);
  EXPECT_EQ(hits[0].span.begin.line, 3);
  EXPECT_NE(hits[0].message.find("min<C>"), std::string::npos);
}

TEST(Lint, ND0012NonLocalizableRule) {
  const auto diags = lint_source(
      "materialize(b, infinity, infinity, keys(1,2,3)).\n"
      "materialize(c, infinity, infinity, keys(1,2)).\n"
      "materialize(d, infinity, infinity, keys(1,2)).\n"
      "materialize(a, infinity, infinity, keys(1)).\n"
      "r1 a(@X) :- b(@X,Y,Z), c(@Y,X), d(@Z,X).\n");
  const auto hits = with_code(diags, "ND0012");
  ASSERT_EQ(hits.size(), 1u) << render_human(diags);
  EXPECT_EQ(hits[0].severity, Severity::Warning);
  EXPECT_EQ(hits[0].span.begin.line, 5);
  EXPECT_NE(hits[0].message.find("3 location"), std::string::npos);
}

TEST(Lint, ND0013NotLinkRestricted) {
  // Two locations, but neither atom carries the other's location variable —
  // the runtime localizer would reject this at execution time; the lint
  // reports it statically, at the rule's position.
  const auto diags = lint_source(
      "materialize(b, infinity, infinity, keys(1,2)).\n"
      "materialize(c, infinity, infinity, keys(1,2)).\n"
      "materialize(a, infinity, infinity, keys(1,2)).\n"
      "r1 a(@X,Y) :- b(@X,W), c(@Y,W).\n");
  const auto hits = with_code(diags, "ND0013");
  ASSERT_EQ(hits.size(), 1u) << render_human(diags);
  EXPECT_EQ(hits[0].severity, Severity::Warning);
  EXPECT_EQ(hits[0].span.begin.line, 4);
  EXPECT_NE(hits[0].message.find("link-restricted"), std::string::npos);
}

TEST(Lint, ND0013SilentOnLinkRestrictedRule) {
  // The paper's r2: link(@S,Z,...) carries Z, so shipping link to @Z is a
  // valid orientation — localizable, no ND0013.
  const auto diags = lint_source(core::path_vector_source());
  EXPECT_TRUE(with_code(diags, "ND0013").empty()) << render_human(diags);
  // And a rule the localizer handles by shipping the *other* way.
  const auto diags2 = lint_source(
      "materialize(b, infinity, infinity, keys(1,2)).\n"
      "materialize(c, infinity, infinity, keys(1,2)).\n"
      "materialize(a, infinity, infinity, keys(1,2)).\n"
      "r1 a(@X,Y) :- b(@X,Y), c(@Y,X).\n");
  EXPECT_TRUE(with_code(diags2, "ND0013").empty()) << render_human(diags2);
}

TEST(Lint, ND0013NotEmittedForThreeLocationRules) {
  // > 2 locations is ND0012's finding; ND0013 must not double-report it.
  const auto diags = lint_source(
      "materialize(b, infinity, infinity, keys(1,2,3)).\n"
      "materialize(c, infinity, infinity, keys(1,2)).\n"
      "materialize(d, infinity, infinity, keys(1,2)).\n"
      "materialize(a, infinity, infinity, keys(1)).\n"
      "r1 a(@X) :- b(@X,Y,Z), c(@Y,X), d(@Z,X).\n");
  EXPECT_TRUE(with_code(diags, "ND0013").empty()) << render_human(diags);
}

TEST(Lint, CollectsEveryFindingNotJustTheFirst) {
  // Two unbound variables in two different rules plus an arity clash: the
  // sink must surface all of them in one run, sorted by line.
  const auto diags = lint_source(
      "materialize(b, infinity, infinity, keys(1)).\n"
      "materialize(a, infinity, infinity, keys(1,2)).\n"
      "materialize(e, infinity, infinity, keys(1,2)).\n"
      "r1 a(@X,Y) :- b(@X).\n"
      "r2 e(@X,Y) :- b(@X).\n"
      "r3 a(@X) :- b(@X).\n");
  std::size_t errors = 0;
  for (const auto& d : diags) {
    if (d.severity == Severity::Error) ++errors;
  }
  EXPECT_GE(errors, 3u) << render_human(diags);
  // Sorted by location.
  int last_line = 0;
  for (const auto& d : diags) {
    if (!d.span.valid()) continue;
    EXPECT_GE(d.span.begin.line, last_line);
    last_line = d.span.begin.line;
  }
}

TEST(Lint, CatalogCoversEveryEmittedCode) {
  const auto& catalog = diagnostic_catalog();
  auto has = [&](std::string_view code) {
    return std::any_of(catalog.begin(), catalog.end(),
                       [&](const DiagnosticCodeInfo& c) { return c.code == code; });
  };
  for (int i = 1; i <= 12; ++i) {
    char code[8];
    std::snprintf(code, sizeof(code), "ND%04d", i);
    EXPECT_TRUE(has(code)) << code;
  }
}

// ---------------------------------------------------------------------------
// Throwing wrappers keep their API but gain source positions.
// ---------------------------------------------------------------------------

TEST(Lint, AnalyzeStillThrowsOnFirstErrorWithLocation) {
  auto program = parse_program(
      "materialize(b, infinity, infinity, keys(1)).\n"
      "r1 a(@X,Y) :- b(@X).\n");
  try {
    analyze(program);
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    EXPECT_NE(std::string(e.what()).find("'Y'"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(Lint, SyntheticRulesCarryNoLocation) {
  // Programmatically-built rules (loc 0) must not fabricate positions.
  Program program;
  Rule rule;
  rule.name = "g1";
  rule.head.predicate = "a";
  rule.head.args.push_back(HeadArg::plain(Term::var("X")));
  program.rules.push_back(rule);
  DiagnosticSink sink;
  check_safety(program, BuiltinRegistry::standard(), sink);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_FALSE(sink.first_error()->span.valid());
  try {
    check_safety(program, BuiltinRegistry::standard());
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    EXPECT_EQ(std::string(e.what()).find("line"), std::string::npos) << e.what();
  }
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

TEST(Diagnostics, HumanRenderingIncludesFilePositionAndHint) {
  DiagnosticSink sink;
  sink.error("ND0003", "variable 'Y' in head is not bound",
             SourceSpan::token({3, 7}, 1))
      .hint = "bind 'Y'";
  const std::string text = render_human(sink.diagnostics(), "prog.ndlog");
  EXPECT_NE(text.find("prog.ndlog:3:7: error: ND0003:"), std::string::npos) << text;
  EXPECT_NE(text.find("hint: bind 'Y'"), std::string::npos) << text;
}

TEST(Diagnostics, JsonRenderingEscapesAndCarriesSpan) {
  DiagnosticSink sink;
  sink.warning("ND0009", "message with \"quotes\"\nand newline",
               SourceSpan::token({2, 5}, 4));
  const std::string json = render_json(sink.diagnostics());
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"code\":\"ND0009\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"quotes\\\"\\nand newline"), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\":2,\"column\":5,\"end_line\":2,\"end_column\":9"),
            std::string::npos)
      << json;
}

TEST(Diagnostics, SinkCountsBySeverity) {
  DiagnosticSink sink;
  sink.error("ND0002", "e1");
  sink.warning("ND0009", "w1");
  sink.warning("ND0010", "w2");
  sink.note("ND0002", "n1");
  EXPECT_EQ(sink.count(Severity::Error), 1u);
  EXPECT_EQ(sink.count(Severity::Warning), 2u);
  EXPECT_EQ(sink.count(Severity::Note), 1u);
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.first_error()->message, "e1");
}

// ---------------------------------------------------------------------------
// Shared localization helper (reused by runtime/localize).
// ---------------------------------------------------------------------------

TEST(Lint, BodyLocationVarsMatchesPaperRule) {
  auto program = core::path_vector_program();
  const auto& r2 = program.rules[1];
  EXPECT_EQ(body_location_vars(r2), (std::set<std::string>{"S", "Z"}));
}

// ---------------------------------------------------------------------------
// docs/DIAGNOSTICS.md stays in sync with the registered catalog
// ---------------------------------------------------------------------------

TEST(Catalog, DiagnosticsDocCoversEveryRegisteredCodeExactly) {
  std::ifstream in(std::string(FVN_SOURCE_DIR) + "/docs/DIAGNOSTICS.md");
  ASSERT_TRUE(in.good()) << "docs/DIAGNOSTICS.md missing";
  std::ostringstream os;
  os << in.rdbuf();
  const std::string doc = os.str();

  // Every registered code has a table row with the registered severity and
  // summary, byte-for-byte.
  for (const auto& info : diagnostic_catalog()) {
    std::string severity;
    switch (info.severity) {
      case Severity::Error: severity = "error"; break;
      case Severity::Warning: severity = "warning"; break;
      case Severity::Note: severity = "note"; break;
    }
    const std::string row = "| " + std::string(info.code) + " | " + severity +
                            " | " + std::string(info.summary) + " |";
    EXPECT_NE(doc.find(row), std::string::npos)
        << "docs/DIAGNOSTICS.md is missing or has a stale row for "
        << info.code << "\nexpected: " << row;
  }
  // And the doc mentions no unregistered ND codes (catches typos and rows
  // for codes that were renumbered away).
  std::set<std::string> registered;
  for (const auto& info : diagnostic_catalog()) registered.emplace(info.code);
  for (std::size_t pos = doc.find("ND00"); pos != std::string::npos;
       pos = doc.find("ND00", pos + 1)) {
    const std::string code = doc.substr(pos, 6);
    EXPECT_TRUE(registered.count(code) == 1)
        << "docs/DIAGNOSTICS.md mentions unregistered code " << code;
  }
}

// ---------------------------------------------------------------------------
// Folding ship-rule findings onto their origin rule (a localized program fed
// back through lint/analyze must not report the same defect twice).
// ---------------------------------------------------------------------------

// A localized-shape program: `link_sh_r1_0` is the generated ship rule for
// r1 (runtime::localize naming), and its body variable C is a singleton —
// the ND0009 lands on the ship rule and must be folded back onto r1.
const char* kShipSingleton =
    "materialize(link, infinity, infinity, keys(1,2)).\n"
    "materialize(link_sh_r1_0, infinity, infinity, keys(1,2)).\n"
    "materialize(reach, infinity, infinity, keys(1,2)).\n"
    "link_sh_r1_0 link_sh_r1_0(S,@Z) :- link(@S,Z,C).\n"
    "r1 reach(@Z,S) :- link_sh_r1_0(S,@Z).\n";

TEST(LintDedupe, ShipRuleFindingRetargetsToOriginRule) {
  auto program = parse_program(kShipSingleton);
  const auto diags = lint_source(kShipSingleton);
  const auto nd9 = with_code(diags, "ND0009");
  ASSERT_EQ(nd9.size(), 1u) << render_human(diags);
  // Retargeted: span, rule index and predicate all name r1, not the ship.
  EXPECT_EQ(nd9[0].span.begin.line, 5);
  EXPECT_EQ(nd9[0].rule_index, 1);
  EXPECT_EQ(nd9[0].predicate, "reach");
  for (const auto& d : diags) {
    EXPECT_EQ(d.predicate.find("_sh_"), std::string::npos) << render_human({d});
    if (d.rule_index >= 0) {
      EXPECT_EQ(program.rules.at(static_cast<std::size_t>(d.rule_index))
                    .name.find("_sh_"),
                std::string::npos)
          << render_human({d});
    }
  }
}

TEST(LintDedupe, ShipFindingDuplicatingOriginFindingIsDropped) {
  // Both the ship rule and r1 itself have a singleton (C and S): only r1's
  // own finding survives; the retargeted ship copy is the duplicate.
  const auto diags = lint_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(link_sh_r1_0, infinity, infinity, keys(1,2)).\n"
      "materialize(reach, infinity, infinity, keys(1)).\n"
      "link_sh_r1_0 link_sh_r1_0(S,@Z) :- link(@S,Z,C).\n"
      "r1 reach(@Z) :- link_sh_r1_0(S,@Z).\n");
  const auto nd9 = with_code(diags, "ND0009");
  ASSERT_EQ(nd9.size(), 1u) << render_human(diags);
  EXPECT_EQ(nd9[0].rule_index, 1);
  EXPECT_EQ(nd9[0].predicate, "reach");
}

TEST(LintDedupe, ProgramsWithoutShipRulesAreUntouched) {
  // Same defects, no ship naming: nothing may be folded or dropped.
  const auto diags = lint_source(
      "materialize(link, infinity, infinity, keys(1,2)).\n"
      "materialize(relay, infinity, infinity, keys(1,2)).\n"
      "materialize(reach, infinity, infinity, keys(1)).\n"
      "h1 relay(S,@Z) :- link(@S,Z,C).\n"
      "r1 reach(@Z) :- relay(S,@Z).\n");
  EXPECT_EQ(with_code(diags, "ND0009").size(), 2u) << render_human(diags);
}

}  // namespace
}  // namespace fvn::ndlog
