// The analyze-all gate (scripts/check.sh runs this via `ctest -L analyze`):
// every shipped example program must survive `fvn_cli lint` and
// `fvn_cli analyze --json` with no error-severity findings, the JSON
// documents must round-trip through the strict fvn::obs reader, and every
// diagnostic payload must carry the machine-readable rule anchor
// (rule_index + predicate) the editor integrations key on. The cost overlay
// (`analyze --cost --json`) must parse on every example too.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace fvn {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string(FVN_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  CliResult result;
  char buf[512];
  while (pipe != nullptr && fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pipe != nullptr ? pclose(pipe) : -1;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::vector<std::string> example_programs() {
  std::vector<std::string> out;
  const auto dir =
      std::filesystem::path(FVN_SOURCE_DIR) / "examples" / "ndlog";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".ndlog") out.push_back(entry.path().string());
  }
  EXPECT_FALSE(out.empty()) << dir;
  return out;
}

/// Exit 0 (clean) or 1 (warnings only) — never 2 (errors/parse failure).
void expect_no_errors(const CliResult& result, const std::string& what) {
  EXPECT_GE(result.exit_code, 0) << what << "\n" << result.output;
  EXPECT_LE(result.exit_code, 1) << what << "\n" << result.output;
}

TEST(AnalyzeAll, EveryExampleLintsWithoutErrors) {
  for (const auto& path : example_programs()) {
    expect_no_errors(run_cli("lint " + path), "lint " + path);
  }
}

TEST(AnalyzeAll, EveryExampleAnalyzeJsonParsesAndAnchorsDiagnostics) {
  for (const auto& path : example_programs()) {
    const auto result = run_cli("analyze --json " + path);
    expect_no_errors(result, "analyze --json " + path);
    const auto doc = obs::json_parse(result.output);
    ASSERT_TRUE(doc.has_value()) << path << "\n" << result.output;
    const obs::JsonValue* files = doc->find("files");
    ASSERT_NE(files, nullptr) << path;
    ASSERT_TRUE(files->is_array()) << path;
    for (const auto& file : files->array) {
      const obs::JsonValue* diags = file.find("diagnostics");
      ASSERT_NE(diags, nullptr) << path;
      for (const auto& d : diags->array) {
        const obs::JsonValue* rule_index = d.find("rule_index");
        const obs::JsonValue* predicate = d.find("predicate");
        ASSERT_NE(rule_index, nullptr) << path << "\n" << result.output;
        ASSERT_NE(predicate, nullptr) << path << "\n" << result.output;
        EXPECT_EQ(rule_index->kind, obs::JsonValue::Kind::Number) << path;
        EXPECT_EQ(predicate->kind, obs::JsonValue::Kind::String) << path;
      }
    }
  }
}

TEST(AnalyzeAll, EveryExampleCostOverlayParses) {
  for (const auto& path : example_programs()) {
    const auto result = run_cli("analyze --cost --json " + path);
    expect_no_errors(result, "analyze --cost --json " + path);
    const auto doc = obs::json_parse(result.output);
    ASSERT_TRUE(doc.has_value()) << path << "\n" << result.output;
    const obs::JsonValue* files = doc->find("files");
    ASSERT_NE(files, nullptr) << path;
    for (const auto& file : files->array) {
      const obs::JsonValue* cost = file.find("cost");
      ASSERT_NE(cost, nullptr) << path << "\n" << result.output;
      ASSERT_NE(cost->find("predicates"), nullptr) << path;
      ASSERT_NE(cost->find("rules"), nullptr) << path;
      ASSERT_NE(cost->find("total_messages"), nullptr) << path;
      ASSERT_NE(cost->find("total_bytes"), nullptr) << path;
    }
  }
}

}  // namespace
}  // namespace fvn
