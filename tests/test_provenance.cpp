// Provenance tests: derivation trees as concrete proof-theoretic semantics
// (paper footnote 1). Every derivation step must satisfy the corresponding
// clause of the arc-4 translated theory — checked mechanically against the
// finite model of the evaluated database.
#include <gtest/gtest.h>

#include "core/protocols.hpp"
#include "logic/finite_model.hpp"
#include "ndlog/provenance.hpp"
#include "translate/ndlog_to_logic.hpp"

namespace fvn {
namespace {

using ndlog::Derivation;
using ndlog::DerivationPtr;
using ndlog::eval_with_provenance;
using ndlog::Tuple;
using ndlog::Value;

TEST(Provenance, MatchesPlainEvaluation) {
  auto program = core::path_vector_program();
  auto links = core::link_facts(core::random_topology(6, 4, 11));
  ndlog::Evaluator plain;
  auto expected = plain.run(program, links);
  auto traced = eval_with_provenance(program, links);
  EXPECT_EQ(expected.database.dump(), traced.database.dump());
}

TEST(Provenance, EveryTupleHasADerivation) {
  auto program = core::path_vector_program();
  auto links = core::link_facts(core::line_topology(4));
  auto result = eval_with_provenance(program, links);
  for (const auto& row : result.database.dump()) {
    (void)row;
  }
  for (const auto& pred : result.database.predicates()) {
    for (const auto& t : result.database.relation(pred)) {
      EXPECT_NE(result.derivation_of(t), nullptr) << t.to_string();
    }
  }
}

TEST(Provenance, BaseFactsAreLeaves) {
  auto links = core::link_facts(core::line_topology(3));
  auto result = eval_with_provenance(core::path_vector_program(), links);
  for (const auto& link : links) {
    auto d = result.derivation_of(link);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->is_base_fact());
    EXPECT_EQ(d->height(), 1u);
  }
}

TEST(Provenance, TransitivePathCitesRuleR2) {
  auto result = eval_with_provenance(core::path_vector_program(),
                                     core::link_facts(core::line_topology(3)));
  // The 2-hop path n0->n2 must be derived by r2 from a link and a 1-hop path.
  Tuple two_hop("path", {Value::addr("n0"), Value::addr("n2"),
                         Value::list({Value::addr("n0"), Value::addr("n1"),
                                      Value::addr("n2")}),
                         Value::integer(2)});
  auto d = result.derivation_of(two_hop);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rule, "r2");
  ASSERT_EQ(d->premises.size(), 2u);
  EXPECT_EQ(d->premises[0]->tuple.predicate(), "link");
  EXPECT_EQ(d->premises[1]->tuple.predicate(), "path");
  EXPECT_EQ(d->premises[1]->rule, "r1");
  // Side conditions recorded (C=C1+C2, P=f_concatPath, f_inPath=false).
  EXPECT_GE(d->side_conditions.size(), 3u);
  EXPECT_EQ(d->height(), 3u);  // link leaf -> r1 path -> r2 path
}

TEST(Provenance, AggregateCitesWinningSolution) {
  auto result = eval_with_provenance(core::path_vector_program(),
                                     core::link_facts(core::line_topology(3)));
  Tuple best_cost("bestPathCost",
                  {Value::addr("n0"), Value::addr("n2"), Value::integer(2)});
  auto d = result.derivation_of(best_cost);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rule, "r3");
  ASSERT_EQ(d->premises.size(), 1u);
  EXPECT_EQ(d->premises[0]->tuple.at(3).as_int(), 2);  // the winning path
}

TEST(Provenance, RenderingShowsTree) {
  auto result = eval_with_provenance(core::path_vector_program(),
                                     core::link_facts(core::line_topology(3)));
  Tuple best("bestPath", {Value::addr("n0"), Value::addr("n2"),
                          Value::list({Value::addr("n0"), Value::addr("n1"),
                                       Value::addr("n2")}),
                          Value::integer(2)});
  auto d = result.derivation_of(best);
  ASSERT_NE(d, nullptr);
  const std::string text = d->to_string();
  EXPECT_NE(text.find("[by r4"), std::string::npos) << text;
  EXPECT_NE(text.find("[base fact]"), std::string::npos) << text;
}

TEST(Provenance, FootnoteOne_DerivationStepsSatisfyTranslatedClauses) {
  // The operational/proof-theoretic equivalence: for every derivation node,
  // the translated inductive definition of its predicate is satisfied at the
  // node's tuple in the finite model of the final database.
  auto program = core::path_vector_program();
  auto theory = translate::to_logic(program);
  auto result = eval_with_provenance(program, core::link_facts(core::line_topology(3)));
  logic::FiniteModel model;
  model.load_database(result.database);

  std::size_t checked = 0;
  for (const auto& [tuple, derivation] : result.derivations) {
    if (derivation->is_base_fact()) continue;
    const auto* def = theory.find_definition(tuple.predicate());
    ASSERT_NE(def, nullptr) << tuple.to_string();
    std::map<std::string, Value> env;
    for (std::size_t i = 0; i < def->params.size(); ++i) {
      env[def->params[i].name] = tuple.at(i);
    }
    EXPECT_TRUE(model.eval(*def->body(), env)) << tuple.to_string();
    if (++checked >= 30) break;  // quantified bodies are costly to enumerate
  }
  EXPECT_GT(checked, 5u);
}

TEST(Provenance, PolicyProgramWithNegationRecordsAbsenceConditions) {
  auto program = core::policy_path_vector_program();
  std::vector<Tuple> facts;
  for (std::size_t i = 0; i < 2; ++i) {
    facts.emplace_back("node", std::vector<Value>{Value::addr(core::node_name(i))});
  }
  for (const auto& t : core::link_facts(core::line_topology(2))) facts.push_back(t);
  for (const char* a : {"n0", "n1"}) {
    for (const char* b : {"n0", "n1"}) {
      if (std::string(a) != b) {
        facts.emplace_back("importPref", std::vector<Value>{Value::addr(a), Value::addr(b),
                                                            Value::integer(100)});
      }
    }
  }
  auto result = eval_with_provenance(program, facts);
  // Some export derivation cites the absence of an exportDeny tuple.
  bool saw_absence = false;
  for (const auto& [tuple, d] : result.derivations) {
    if (tuple.predicate() != "export") continue;
    for (const auto& sc : d->side_conditions) {
      if (sc.rfind("absent exportDeny", 0) == 0) saw_absence = true;
    }
  }
  EXPECT_TRUE(saw_absence);
}

TEST(Provenance, DerivationSizesAreReasonable) {
  auto result = eval_with_provenance(core::path_vector_program(),
                                     core::link_facts(core::line_topology(5)));
  // The longest best path on a 5-line has height ~ O(n).
  std::size_t max_height = 0;
  for (const auto& [tuple, d] : result.derivations) {
    max_height = std::max(max_height, d->height());
  }
  EXPECT_GE(max_height, 5u);
  EXPECT_LE(max_height, 12u);
}

}  // namespace
}  // namespace fvn
